// Sharded multi-coordinator topology over the concurrent engine: the k
// sites are partitioned across S shard coordinators, each an unmodified
// engine::Engine — a per-shard work-stealing worker pool of logical
// sites feeding a dedicated shard coordinator thread over the shard's
// own bounded MPSC channel (an auto worker budget is split across the
// shards so the pools together stay within hardware_concurrency) — plus a
// root merge stage (MergedSample) that combines the shard coordinators'
// mergeable summaries into the exact global sample at quiesce points.
//
// Why this scales past the single-coordinator engine: the coordinator
// thread and its one MPSC inbox are the engine's serialization point —
// every upstream protocol message funnels through them. Sharding gives a
// message-heavy deployment S coordinator threads and S channels (k/S
// producers each instead of k), while the shards exchange nothing during
// the stream; only their O(s) summaries meet at query time. That also
// means shards could live in different processes — the summaries are the
// entire cross-shard traffic (see ROADMAP: multi-process transport).
//
// Construction mirrors engine::Engine per shard:
//
//   ShardedEngine eng({.num_sites = k, .num_shards = S});
//   // per global site i: build the endpoint with LOCAL index
//   // eng.topology().LocalOf(i) against eng.shard_transport(shard),
//   // then eng.AttachSite(i, site);
//   // per shard j: build a coordinator against eng.shard_transport(j),
//   // then eng.AttachShardCoordinator(j, coord);
//   eng.Run(workload);                  // global site indices
//   auto sample = eng.MergedSample().TopEntries();
//
// Query legality, teardown, and the single-feeder ingestion contract are
// exactly engine::Engine's (see engine/engine.h), applied per shard.

#ifndef DWRS_ENGINE_SHARDED_ENGINE_H_
#define DWRS_ENGINE_SHARDED_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/engine.h"
#include "stream/sharding.h"

namespace dwrs::engine {

struct ShardedEngineConfig {
  int num_sites = 8;   // global k
  int num_shards = 2;  // S coordinator threads / MPSC channels
  // Per-shard engine template; num_sites is overridden per shard.
  EngineConfig shard;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(const ShardedEngineConfig& config);

  const ShardTopology& topology() const { return topology_; }
  int num_sites() const { return topology_.num_sites(); }
  int num_shards() const { return topology_.num_shards(); }

  // The transport endpoints of shard `shard` are constructed against.
  sim::Transport& shard_transport(int shard) {
    return shard_engine(shard).transport();
  }
  Engine& shard_engine(int shard) { return *shards_[Index(shard)]; }
  const Engine& shard_engine(int shard) const { return *shards_[Index(shard)]; }

  // Non-owning; global site index (node built with the LOCAL index).
  void AttachSite(int site, sim::SiteNode* node);
  void AttachShardCoordinator(int shard, sim::CoordinatorNode* node);

  // Installs shard `shard`'s snapshot-publication hook, invoked on that
  // shard's coordinator thread after every processed message (see
  // engine/engine.h) — the publication side of the live query path
  // (src/query/). Install before the first Push/Run/Flush.
  void SetShardSnapshotHook(int shard, std::function<void()> hook);

  // Feeder thread only (single producer across all shards, as with
  // engine::Engine::Push).
  void Push(int site, const Item& item);
  void Push(int site, const Item* items, size_t n);

  // Quiesces every shard; afterwards querying endpoints and
  // MergedSample() is legal.
  void Flush();

  // Runs the full global workload and ends with Flush(). An on_step hook
  // (or shard.step_synchronous) forces step-synchronous execution —
  // quiescing the owning shard after every event — which replays
  // sim::ShardedRuntime bit for bit.
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  // Stops and joins all shard worker threads (idempotent).
  void Shutdown();

  // Root merge stage over the attached shard coordinators' summaries.
  MergeableSample MergedSample() const;

  // Traffic summed over shards (quiesce points only); per-shard stats —
  // including per-shard message counts — via shard_engine(j).stats().
  sim::MessageStats AggregateMessageSnapshot() const;
  std::vector<uint64_t> PerShardMessages() const;

  // Global events handed off so far (sum of shard step clocks).
  uint64_t steps() const;

 private:
  size_t Index(int shard) const {
    DWRS_CHECK(shard >= 0 && shard < topology_.num_shards());
    return static_cast<size_t>(shard);
  }

  const ShardedEngineConfig config_;
  ShardTopology topology_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<sim::CoordinatorNode*> coordinators_;
};

}  // namespace dwrs::engine

#endif  // DWRS_ENGINE_SHARDED_ENGINE_H_
