// Work-stealing scheduler: a fixed pool of N worker threads multiplexing
// k logical sites (see logical_site.h), replacing the engine's old
// thread-per-site design so one box runs k = 10^5..10^6 sites.
//
// Shape (after Hyrise's node-queue scheduler): every worker owns a run
// queue of runnable LogicalSites; a site is homed to worker (site mod N)
// so its cache state tends to stay put; a worker whose own queue is dry
// steals from the back of a victim's queue; idle workers park on one
// shared bus. A dispatched site is drained (control messages first, then
// item batches in control_poll_stride sub-spans) for at most a quantum of
// item_queue_batches batches before being requeued, so one hot site
// cannot starve the rest of its home queue.
//
// Scheduling state machine (LogicalSite::sched, values in
// logical_site.h): producers notify a site with an unconditional
// compare-exchange loop —
//
//   kIdle    -> kQueued    (the notifier enqueues the site)
//   kRunning -> kNotified  (the running worker re-drains before idling)
//   kQueued, kNotified     unchanged — but written back anyway, because
//                          the RMW is the point: it reads the latest
//                          value in modification order and its release
//                          write is what publishes the producer's queue
//                          push to the worker that eventually observes
//                          the state.
//
// The dispatching worker takes a site with exchange(kRunning, acq_rel)
// and leaves with compare_exchange(kRunning -> kIdle); a failure means a
// notification raced in, and the failure load's acquire ordering makes
// the racing producer's pushes visible for the re-drain. Because every
// producer-side edge is an RMW and the worker never goes idle without
// winning that CAS, no notification can be lost to store-buffer
// reordering — the classic "store idle, then recheck the queues" lost-
// wakeup race has no analogue here. The same chain of RMWs hands the
// SPSC rings' consumer role from worker to worker with a happens-before
// edge, so the single-threaded endpoint contract of sim/node.h holds
// even though consecutive dispatches of one site may run on different
// workers.
//
// Quiesce accounting is aggregate: one pushed counter incremented before
// any unit (item batch or control message) is enqueued, one done counter
// incremented only after the endpoint callback — including the sends it
// performed — returned. Per-site counters would make the engine's
// double-scan quiesce check an O(k) walk per progress event, which at
// k = 10^5 dominates the run; two scheduler-global atomics keep it O(1)
// with the identical invariant.

#ifndef DWRS_ENGINE_SCHEDULER_H_
#define DWRS_ENGINE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/config.h"
#include "engine/logical_site.h"
#include "engine/stats.h"
#include "sim/node.h"

namespace dwrs::engine {

class Scheduler {
 public:
  // Resolves config.num_workers: 0 means auto — hardware_concurrency
  // minus two (feeder + coordinator threads), clamped to [1, num_sites].
  // Exposed so ShardedEngine can split one auto budget across shards.
  static int ResolveWorkerCount(int num_workers, int num_sites);

  Scheduler(const EngineConfig& config, QuiesceBus* bus, EngineStats* stats);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Non-owning; all sites must be attached before Start().
  void AttachSite(int site, sim::SiteNode* node);

  void Start();
  // Closes every control channel and wakes everything (parked workers,
  // a feeder blocked on a full ring). Workers finish draining what is
  // already runnable, then exit; Join() reaps them.
  void RequestStop();
  void Join();

  // Feeder side (single producer per site, one feeder thread overall).
  // Blocks while the site's item ring is full — the engine's ingestion
  // backpressure. Counts blocking episodes in `stall_counter`. A stop
  // request mid-wait drops the batch and counts it in
  // stats->batches_dropped_on_shutdown.
  void PushBatch(int site, ItemBatch&& batch,
                 std::atomic<uint64_t>* stall_counter);

  // Coordinator side. Never blocks (control channels are unbounded to
  // break the site⇄coordinator wait cycle; see channels.h).
  void PushControl(int site, const sim::Payload& msg);

  // Feeder side: pops a recycled (empty, capacity-retaining) batch buffer
  // off the site's free list; false on a cold start (feeder allocates).
  bool TryGetRecycled(int site, ItemBatch* out) {
    return sites_[static_cast<size_t>(site)]->recycled.TryPop(out);
  }

  // True iff every pushed unit has been fully processed. With the
  // engine's double-scan this yields the same quiesce guarantee as the
  // old per-site counters (see the header comment).
  bool Idle() const {
    return units_done_.load() == units_pushed_.load();
  }
  // Monotone work-creation counter for the double-scan quiesce check.
  uint64_t units_pushed() const { return units_pushed_.load(); }

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  // One worker thread's scheduling state. The queue holds sites in state
  // kQueued; `queued` mirrors queue.size() as an atomic so the no-steal
  // park predicate can read it without the queue mutex (transiently
  // negative while a pop races its producer's increment — harmless, the
  // predicate only asks "certainly nonempty?").
  struct Worker {
    std::mutex mutex;
    std::deque<LogicalSite*> queue;  // front: own pops; back: steals
    std::atomic<int64_t> queued{0};
    std::thread thread;
  };

  void WorkerMain(int worker);
  LogicalSite* DequeueLocal(Worker& me);
  LogicalSite* Steal(int thief);
  void RunSite(int worker, LogicalSite* site);
  void DrainControl(LogicalSite* site);
  void ProcessBatch(int worker, LogicalSite* site, ItemBatch& batch);
  void NotifySite(LogicalSite* site, int preferred_worker);
  void Enqueue(LogicalSite* site, int worker);
  bool Runnable(const Worker& me) const {
    return work_stealing_ ? ready_.load() > 0 : me.queued.load() > 0;
  }

  const size_t control_poll_stride_;
  const size_t dispatch_quantum_;  // batches per dispatch before requeue
  const bool work_stealing_;
  const int trace_shard_;
  QuiesceBus* const bus_;
  EngineStats* const stats_;

  std::vector<std::unique_ptr<LogicalSite>> sites_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Aggregate quiesce counters (see the header comment).
  std::atomic<uint64_t> units_pushed_{0};
  std::atomic<uint64_t> units_done_{0};

  // Runnable-site hint for the park predicate: incremented after an
  // enqueue, decremented after a dequeue/steal, so > 0 whenever some
  // queue is certainly nonempty (transiently negative like
  // Worker::queued).
  std::atomic<int64_t> ready_{0};

  std::mutex park_mutex_;  // idle workers park here (the shared bus)
  std::condition_variable park_cv_;
  std::mutex space_mutex_;  // the feeder parks here when a ring is full
  std::condition_variable space_cv_;
  std::atomic<bool> closed_{false};
  bool started_ = false;
};

}  // namespace dwrs::engine

#endif  // DWRS_ENGINE_SCHEDULER_H_
