#include "engine/stats.h"

#include <sstream>

namespace dwrs::engine {

sim::MessageStats EngineStats::MessageSnapshot() const {
  sim::MessageStats out;
  out.site_to_coord = site_to_coord.load(std::memory_order_relaxed);
  out.coord_to_site = coord_to_site.load(std::memory_order_relaxed);
  out.broadcast_events = broadcast_events.load(std::memory_order_relaxed);
  out.words = words.load(std::memory_order_relaxed);
  for (size_t i = 0; i < by_type.size(); ++i) {
    out.by_type[i] = by_type[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::string EngineStats::ToString() const {
  std::ostringstream os;
  os << MessageSnapshot().ToString()
     << " items=" << items_ingested.load(std::memory_order_relaxed)
     << " batches=" << batches_ingested.load(std::memory_order_relaxed)
     << " ingest_stalls=" << ingest_stalls.load(std::memory_order_relaxed)
     << " upstream_stalls=" << upstream_stalls.load(std::memory_order_relaxed)
     << " quiesces=" << quiesces.load(std::memory_order_relaxed)
     << " recycled=" << batches_recycled.load(std::memory_order_relaxed)
     << " pool_misses=" << batch_pool_misses.load(std::memory_order_relaxed)
     << " keys_decided=" << keys_decided.load(std::memory_order_relaxed)
     << " key_bits=" << key_bits_consumed.load(std::memory_order_relaxed)
     << " skips=" << skips_taken.load(std::memory_order_relaxed);
  return os.str();
}

}  // namespace dwrs::engine
