#include "engine/stats.h"

#include "obs/metrics.h"
#include "obs/schema.h"

namespace dwrs::engine {

sim::MessageStats EngineStats::MessageSnapshot() const {
  sim::MessageStats out;
  out.site_to_coord = site_to_coord.load(std::memory_order_relaxed);
  out.coord_to_site = coord_to_site.load(std::memory_order_relaxed);
  out.broadcast_events = broadcast_events.load(std::memory_order_relaxed);
  out.words = words.load(std::memory_order_relaxed);
  for (size_t i = 0; i < by_type.size(); ++i) {
    out.by_type[i] = by_type[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::string EngineStats::ToString() const {
  obs::Snapshot snapshot;
  obs::AppendEngineStats(*this, /*prefix=*/"", &snapshot);
  return snapshot.ToText();
}

}  // namespace dwrs::engine
