#include "engine/engine.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dwrs::engine {

Engine::Engine(const EngineConfig& config)
    : config_(config),
      site_nodes_(static_cast<size_t>(config.num_sites), nullptr),
      pending_(static_cast<size_t>(config.num_sites)) {
  DWRS_CHECK_GT(config.num_sites, 0);
  DWRS_CHECK_GT(config.batch_size, 0u);
  DWRS_CHECK_GT(config.item_queue_batches, 0u);
  DWRS_CHECK_GT(config.message_queue_capacity, 0u);
  DWRS_CHECK_GT(config.control_poll_stride, 0u);
  // Pending buffers grow lazily: an eager reserve here would pin
  // batch_size * sizeof(Item) bytes per site before any item arrives —
  // at the virtualized-site scale (k = 10^5) that is hundreds of MB of
  // mostly-idle buffers. Hot sites reach full capacity after one
  // handoff/recycle cycle anyway.
}

Engine::~Engine() { Shutdown(); }

void Engine::AttachSite(int site, sim::SiteNode* node) {
  DWRS_CHECK(site >= 0 && site < config_.num_sites);
  DWRS_CHECK(node != nullptr);
  DWRS_CHECK(!started_) << " attach before the first Push/Run/Flush";
  site_nodes_[static_cast<size_t>(site)] = node;
}

void Engine::AttachCoordinator(sim::CoordinatorNode* node) {
  DWRS_CHECK(node != nullptr);
  DWRS_CHECK(!started_) << " attach before the first Push/Run/Flush";
  coordinator_node_ = node;
}

void Engine::SetSnapshotHook(std::function<void()> hook) {
  DWRS_CHECK(!started_) << " install the hook before the first Push/Run/Flush";
  snapshot_hook_ = std::move(hook);
}

void Engine::Start() {
  if (started_) return;
  DWRS_CHECK(coordinator_node_ != nullptr) << " no coordinator attached";
  coordinator_worker_ = std::make_unique<CoordinatorWorker>(
      coordinator_node_, config_.message_queue_capacity, &bus_,
      config_.trace_shard);
  if (snapshot_hook_) coordinator_worker_->SetSnapshotHook(snapshot_hook_);
  scheduler_ = std::make_unique<Scheduler>(config_, &bus_, &stats_);
  for (size_t i = 0; i < site_nodes_.size(); ++i) {
    DWRS_CHECK(site_nodes_[i] != nullptr) << " site " << i << " not attached";
    scheduler_->AttachSite(static_cast<int>(i), site_nodes_[i]);
  }
  coordinator_worker_->Start();
  scheduler_->Start();
  started_ = true;
}

void Engine::Push(int site, const Item& item) {
  DWRS_CHECK(site >= 0 && site < config_.num_sites);
  DWRS_CHECK(!shut_down_) << " engine already shut down";
  if (!started_) Start();
  ItemBatch& batch = pending_[static_cast<size_t>(site)];
  batch.push_back(item);
  if (batch.size() >= config_.batch_size) HandOffBatch(site);
}

void Engine::Push(int site, const Item* items, size_t n) {
  DWRS_CHECK(site >= 0 && site < config_.num_sites);
  DWRS_CHECK(!shut_down_) << " engine already shut down";
  if (!started_) Start();
  ItemBatch& batch = pending_[static_cast<size_t>(site)];
  while (n > 0) {
    const size_t take = std::min(n, config_.batch_size - batch.size());
    batch.insert(batch.end(), items, items + take);
    items += take;
    n -= take;
    if (batch.size() >= config_.batch_size) HandOffBatch(site);
  }
}

void Engine::RefillPending(int site) {
  // Pull a recycled buffer off the site worker's free list; allocate only
  // on a cold start (the pool warms to item_queue_batches buffers and
  // then cycles them indefinitely: zero steady-state heap traffic).
  ItemBatch& batch = pending_[static_cast<size_t>(site)];
  if (!scheduler_->TryGetRecycled(site, &batch)) {
    batch = ItemBatch();  // cold start: grows lazily, then recycles warm
    stats_.batch_pool_misses.fetch_add(1, std::memory_order_relaxed);
  }
}

void Engine::HandOffBatch(int site) {
  ItemBatch& batch = pending_[static_cast<size_t>(site)];
  if (batch.empty()) return;
  const uint64_t n = batch.size();
  // The step clock advances when events become visible to workers: one
  // atomic add per batch, the engine's amortization of per-item cost.
  steps_.fetch_add(n, std::memory_order_relaxed);
  stats_.items_ingested.fetch_add(n, std::memory_order_relaxed);
  stats_.batches_ingested.fetch_add(1, std::memory_order_relaxed);
  ItemBatch handoff = std::move(batch);
  RefillPending(site);
  scheduler_->PushBatch(site, std::move(handoff), &stats_.ingest_stalls);
}

bool Engine::AllIdle() const {
  // Two aggregate counter pairs, not an O(k) per-site walk — the quiesce
  // predicate runs on every progress event.
  return coordinator_worker_->Idle() && scheduler_->Idle();
}

uint64_t Engine::TotalUnitsPushed() const {
  return coordinator_worker_->units_pushed() + scheduler_->units_pushed();
}

void Engine::WaitQuiesce() {
  // Double scan: all pushed==done twice with no work created in between
  // guarantees there was an instant with nothing queued and nothing in
  // flight (a unit's pushed counter is incremented before it is enqueued
  // and its done counter only after processing — including the pushes the
  // processing itself performed — completed).
  bus_.WaitUntil([this] {
    if (!AllIdle()) return false;
    const uint64_t created = TotalUnitsPushed();
    return AllIdle() && TotalUnitsPushed() == created;
  });
  stats_.quiesces.fetch_add(1, std::memory_order_relaxed);
}

void Engine::CollectSiteCounters() {
  // Legal only at quiesce points (workers parked, happens-before edge
  // established by the pushed/done handshake): fold every endpoint's
  // hot-path counters into the engine stats.
  sim::SiteHotPathCounters total;
  for (const sim::SiteNode* node : site_nodes_) {
    total += node->HotPathCounters();
  }
  stats_.keys_decided.store(total.keys_decided, std::memory_order_relaxed);
  stats_.key_bits_consumed.store(total.key_bits_consumed,
                                 std::memory_order_relaxed);
  stats_.skips_taken.store(total.skips_taken, std::memory_order_relaxed);
}

void Engine::Flush() {
  DWRS_CHECK(!shut_down_) << " engine already shut down";
  if (!started_) Start();
  for (int site = 0; site < config_.num_sites; ++site) HandOffBatch(site);
  WaitQuiesce();
  CollectSiteCounters();
}

void Engine::Run(const Workload& workload,
                 const std::function<void(uint64_t)>& on_step) {
  DWRS_CHECK_EQ(workload.num_sites(), config_.num_sites);
  if (!started_) Start();
  const bool step_synchronous = config_.step_synchronous || on_step != nullptr;
  for (uint64_t i = 0; i < workload.size(); ++i) {
    const WorkloadEvent& event = workload.event(i);
    Push(event.site, event.item);
    if (step_synchronous) {
      Flush();
      if (on_step) on_step(i + 1);
    }
  }
  Flush();
}

void Engine::RunPaced(const Workload& workload,
                      const std::vector<uint32_t>& batches,
                      const std::function<void(uint64_t)>& on_round) {
  DWRS_CHECK_EQ(workload.num_sites(), config_.num_sites);
  uint64_t total = 0;
  for (uint32_t b : batches) total += b;
  DWRS_CHECK_EQ(total, workload.size());
  if (!started_) Start();
  uint64_t pos = 0;
  for (uint32_t b : batches) {
    for (uint32_t j = 0; j < b; ++j) {
      const WorkloadEvent& event = workload.event(pos++);
      Push(event.site, event.item);
      if (config_.step_synchronous) Flush();
    }
    if (on_round) {
      Flush();
      on_round(pos);
    }
  }
  Flush();
}

void Engine::Shutdown() {
  if (!started_ || shut_down_) {
    shut_down_ = true;
    return;
  }
  // Order matters: closing the coordinator inbox first unblocks any pool
  // worker stalled in an upstream send, so the pool joins cleanly.
  coordinator_worker_->RequestStop();
  scheduler_->RequestStop();
  scheduler_->Join();
  coordinator_worker_->Join();
  shut_down_ = true;
}

void Engine::Account(const sim::Payload& msg, bool upstream) {
  if (upstream) {
    stats_.site_to_coord.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.coord_to_site.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.words.fetch_add(msg.words, std::memory_order_relaxed);
  if (msg.type < stats_.by_type.size()) {
    stats_.by_type[msg.type].fetch_add(1, std::memory_order_relaxed);
  }
}

void Engine::SendToCoordinator(int site, const sim::Payload& msg) {
  DWRS_CHECK(site >= 0 && site < config_.num_sites);
  Account(msg, /*upstream=*/true);
  coordinator_worker_->PushMessage(site, msg, &stats_.upstream_stalls);
}

void Engine::SendToSite(int site, const sim::Payload& msg) {
  DWRS_CHECK(site >= 0 && site < config_.num_sites);
  Account(msg, /*upstream=*/false);
  scheduler_->PushControl(site, msg);
}

void Engine::Broadcast(const sim::Payload& msg) {
  stats_.broadcast_events.fetch_add(1, std::memory_order_relaxed);
  for (int site = 0; site < config_.num_sites; ++site) SendToSite(site, msg);
}

}  // namespace dwrs::engine
