// Inter-thread channels of the concurrent execution engine.
//
// Two primitives cover the engine's three channel kinds:
//
//   SpscRing<T>  — lock-free bounded single-producer/single-consumer ring.
//                  Used for the hot item path (feeder -> logical site),
//                  where each slot holds a whole ingestion batch so the
//                  per-item synchronization cost is one release store and
//                  one acquire load amortized over the batch. The
//                  consumer role migrates between pool workers; the
//                  scheduler's state-machine RMW chain (scheduler.h)
//                  provides the happens-before edge that keeps the ring
//                  single-consumer at any instant.
//   Channel<T>   — mutex+condvar FIFO, multi-producer, optionally bounded
//                  with blocking producers (backpressure). Used for the
//                  site->coordinator MPSC message channel (bounded: a slow
//                  coordinator stalls the sites, which stalls ingestion)
//                  and for the coordinator->site control channel
//                  (unbounded: the coordinator must never block on a site
//                  that is itself blocked sending upstream, which would
//                  deadlock the site⇄coordinator cycle; control volume is
//                  protocol-bounded at O(k log W) anyway).
//
// Neither primitive parks its consumer: engine workers multiplex several
// channels, so consumers poll with TryPop and park on the scheduler's
// shared bus (see scheduler.h); producers wake a worker after a push.

#ifndef DWRS_ENGINE_CHANNELS_H_
#define DWRS_ENGINE_CHANNELS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.h"

namespace dwrs::engine {

// Lock-free bounded SPSC ring buffer. Exactly one producer thread may call
// TryPush and exactly one consumer thread may call TryPop; Empty() is safe
// from any thread (used by quiesce checks, which additionally rely on the
// pushed/done counters kept by the workers).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  // Moves from `v` and returns true iff there was a free slot.
  bool TryPush(T& v) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool Empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  uint64_t mask_ = 0;
  // Separate cache lines so producer and consumer do not false-share.
  alignas(64) std::atomic<uint64_t> tail_{0};  // next write (producer-owned)
  alignas(64) std::atomic<uint64_t> head_{0};  // next read (consumer-owned)
};

// Mutex-protected FIFO. Multi-producer; the engine uses it single-consumer.
// capacity == 0 means unbounded (Push never blocks); otherwise Push blocks
// while full — the engine's backpressure edge. Messages are rare by
// design (the protocol's entire point is that sites mostly stay silent),
// so a lock per message is cheap next to the per-item work it protects.
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Returns false iff the channel was closed (shutdown); blocks while a
  // bounded channel is full. `stall_counter`, if given, counts blocking
  // episodes: one increment per Push that had to wait, however many
  // condvar wakeups (spurious or racing) it takes before a slot frees up.
  bool Push(T v, std::atomic<uint64_t>* stall_counter = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    bool stalled = false;
    while (capacity_ != 0 && queue_.size() >= capacity_ && !closed_) {
      if (!stalled && stall_counter != nullptr) {
        stall_counter->fetch_add(1, std::memory_order_relaxed);
      }
      stalled = true;
      // Counted under the mutex and wait() releases it atomically, so a
      // parked producer is always visible to TryPop's waiter check below.
      ++waiters_;
      not_full_.wait(lock);
      --waiters_;
    }
    if (closed_) return false;
    queue_.push_back(std::move(v));
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    size_.fetch_sub(1, std::memory_order_relaxed);
    // Producers only park while the channel is full, so on the vastly
    // common uncontended pop there is nobody to wake and the
    // (syscall-prone) notify is skipped entirely. The explicit waiter
    // count — maintained under this same mutex — makes the skip exact:
    // notify_all whenever anyone waits, never otherwise.
    if (waiters_ > 0) not_full_.notify_all();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_full_.notify_all();
  }

  // Lock-free size hint: lets a consumer skip the mutex entirely on its
  // per-item freshness poll when the channel is (almost certainly) empty.
  size_t SizeApprox() const { return size_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::atomic<size_t> size_{0};
  const size_t capacity_;
  size_t waiters_ = 0;  // producers parked in Push (guarded by mutex_)
  bool closed_ = false;
};

// Engine-wide progress bus. Workers publish "I completed a unit of work"
// events; the quiesce waiter sleeps on the condvar and re-evaluates the
// pushed==done counters on every event. One mutex acquisition per item
// batch / per message keeps this off the per-item path.
class QuiesceBus {
 public:
  void NotifyProgress() {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_all();
  }

  // Blocks until `quiet` (evaluated under the bus mutex) returns true.
  template <typename Pred>
  void WaitUntil(Pred quiet) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, quiet);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace dwrs::engine

#endif  // DWRS_ENGINE_CHANNELS_H_
