#include "engine/site_worker.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::engine {

SiteWorker::SiteWorker(sim::SiteNode* node, size_t queue_batches,
                       size_t control_poll_stride, QuiesceBus* bus,
                       EngineStats* stats, int site, int trace_shard)
    : node_(node),
      bus_(bus),
      stats_(stats),
      control_poll_stride_(control_poll_stride),
      site_(site),
      trace_shard_(trace_shard),
      items_(queue_batches),
      // One slot per in-flight batch plus slack for the buffer the feeder
      // is filling and the one the worker is draining, so the free list
      // never overflows in the steady state.
      recycled_(queue_batches + 2),
      control_(0) {
  DWRS_CHECK(node != nullptr);
  DWRS_CHECK(bus != nullptr);
  DWRS_CHECK(stats != nullptr);
  DWRS_CHECK_GT(control_poll_stride, 0u);
}

SiteWorker::~SiteWorker() {
  RequestStop();
  Join();
}

void SiteWorker::Start() {
  DWRS_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { ThreadMain(); });
}

void SiteWorker::RequestStop() {
  closed_.store(true);
  control_.Close();
  Wake();
  {
    std::lock_guard<std::mutex> lock(space_mutex_);
    space_cv_.notify_all();
  }
}

void SiteWorker::Join() {
  if (thread_.joinable()) thread_.join();
}

void SiteWorker::PushBatch(ItemBatch&& batch,
                           std::atomic<uint64_t>* stall_counter) {
  DWRS_CHECK(!batch.empty());
  // pushed is incremented before the enqueue so a batch is never invisible
  // to the quiesce check while in flight.
  batches_pushed_.fetch_add(1);
  if (!items_.TryPush(batch)) {
    if (stall_counter != nullptr) {
      stall_counter->fetch_add(1, std::memory_order_relaxed);
    }
    if (obs::TracingEnabled()) {
      obs::TraceEvent event;
      event.type = obs::EventType::kIngestStall;
      event.shard = static_cast<int16_t>(trace_shard_);
      event.site = static_cast<int16_t>(site_);
      event.a = batch.size();
      obs::Emit(event);
    }
    std::unique_lock<std::mutex> lock(space_mutex_);
    while (!items_.TryPush(batch)) {
      if (closed_.load()) {  // shutting down mid-stream: drop the batch
        batches_pushed_.fetch_sub(1);
        return;
      }
      space_cv_.wait(lock);
    }
  }
  Wake();
}

void SiteWorker::PushControl(const sim::Payload& msg) {
  ctrl_pushed_.fetch_add(1);
  if (!control_.Push(msg)) {  // closed during shutdown
    ctrl_pushed_.fetch_sub(1);
    return;
  }
  Wake();
}

void SiteWorker::Wake() {
  std::lock_guard<std::mutex> lock(park_mutex_);
  park_cv_.notify_one();
}

void SiteWorker::DrainControl() {
  if (control_.SizeApprox() == 0) return;  // the per-item fast path
  sim::Payload msg;
  while (control_.TryPop(&msg)) {
    node_->OnMessage(msg);
    ctrl_done_.fetch_add(1);
  }
  bus_->NotifyProgress();
}

bool SiteWorker::DrainOnce() {
  bool did_work = false;
  DrainControl();
  ItemBatch batch;
  if (items_.TryPop(&batch)) {
    // A ring slot just freed up; unblock the feeder before the batch is
    // processed so ingestion overlaps with site work.
    {
      std::lock_guard<std::mutex> lock(space_mutex_);
      space_cv_.notify_one();
    }
    // Hand the batch to the endpoint's span path in control_poll_stride
    // sub-batches, applying control traffic between them: fresher
    // thresholds still suppress sends promptly (message counts stay near
    // the step-synchronous ideal) while the endpoint's hot loop runs
    // whole spans with every loop-invariant hoisted and zero
    // synchronization.
    const Item* data = batch.data();
    const size_t total = batch.size();
    const bool tracing = obs::TracingEnabled();
    std::chrono::steady_clock::time_point span_start;
    if (tracing) span_start = std::chrono::steady_clock::now();
    for (size_t done = 0; done < total;) {
      DrainControl();
      const size_t chunk = std::min(control_poll_stride_, total - done);
      node_->OnItems(data + done, chunk);
      done += chunk;
    }
    if (tracing) {
      const auto span_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - span_start)
                               .count();
      obs::TraceEvent event;
      event.type = obs::EventType::kItemSpan;
      event.shard = static_cast<int16_t>(trace_shard_);
      event.site = static_cast<int16_t>(site_);
      event.a = total;  // items in the batch
      event.dur_ns = span_ns > 0 ? static_cast<uint32_t>(std::min<int64_t>(
                                       span_ns, UINT32_MAX))
                                 : 1;
      obs::Emit(event);
    }
    // Return the drained buffer (capacity intact) to the feeder's free
    // list; if the list is momentarily full the buffer simply deallocates.
    batch.clear();
    if (recycled_.TryPush(batch)) {
      stats_->batches_recycled.fetch_add(1, std::memory_order_relaxed);
    }
    batches_done_.fetch_add(1);
    bus_->NotifyProgress();
    did_work = true;
  }
  return did_work;
}

void SiteWorker::ThreadMain() {
  for (;;) {
    if (DrainOnce()) continue;
    std::unique_lock<std::mutex> lock(park_mutex_);
    if (closed_.load()) break;
    // Recheck under the park mutex: a producer that pushed after our
    // DrainOnce either sees us before wait() (its Wake blocks on the
    // mutex until we release it in wait) or we see its push here.
    if (HasWorkHint()) continue;
    park_cv_.wait(lock);
  }
}

}  // namespace dwrs::engine
