#include "engine/site_worker.h"

#include "util/check.h"

namespace dwrs::engine {

SiteWorker::SiteWorker(sim::SiteNode* node, size_t queue_batches,
                       QuiesceBus* bus)
    : node_(node), bus_(bus), items_(queue_batches), control_(0) {
  DWRS_CHECK(node != nullptr);
  DWRS_CHECK(bus != nullptr);
}

SiteWorker::~SiteWorker() {
  RequestStop();
  Join();
}

void SiteWorker::Start() {
  DWRS_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { ThreadMain(); });
}

void SiteWorker::RequestStop() {
  closed_.store(true);
  control_.Close();
  Wake();
  {
    std::lock_guard<std::mutex> lock(space_mutex_);
    space_cv_.notify_all();
  }
}

void SiteWorker::Join() {
  if (thread_.joinable()) thread_.join();
}

void SiteWorker::PushBatch(ItemBatch&& batch,
                           std::atomic<uint64_t>* stall_counter) {
  DWRS_CHECK(!batch.empty());
  // pushed is incremented before the enqueue so a batch is never invisible
  // to the quiesce check while in flight.
  batches_pushed_.fetch_add(1);
  if (!items_.TryPush(batch)) {
    if (stall_counter != nullptr) {
      stall_counter->fetch_add(1, std::memory_order_relaxed);
    }
    std::unique_lock<std::mutex> lock(space_mutex_);
    while (!items_.TryPush(batch)) {
      if (closed_.load()) {  // shutting down mid-stream: drop the batch
        batches_pushed_.fetch_sub(1);
        return;
      }
      space_cv_.wait(lock);
    }
  }
  Wake();
}

void SiteWorker::PushControl(const sim::Payload& msg) {
  ctrl_pushed_.fetch_add(1);
  if (!control_.Push(msg)) {  // closed during shutdown
    ctrl_pushed_.fetch_sub(1);
    return;
  }
  Wake();
}

void SiteWorker::Wake() {
  std::lock_guard<std::mutex> lock(park_mutex_);
  park_cv_.notify_one();
}

void SiteWorker::DrainControl() {
  if (control_.SizeApprox() == 0) return;  // the per-item fast path
  sim::Payload msg;
  while (control_.TryPop(&msg)) {
    node_->OnMessage(msg);
    ctrl_done_.fetch_add(1);
  }
  bus_->NotifyProgress();
}

bool SiteWorker::DrainOnce() {
  bool did_work = false;
  DrainControl();
  ItemBatch batch;
  if (items_.TryPop(&batch)) {
    // A ring slot just freed up; unblock the feeder before the batch is
    // processed so ingestion overlaps with site work.
    {
      std::lock_guard<std::mutex> lock(space_mutex_);
      space_cv_.notify_one();
    }
    for (const Item& item : batch) {
      // Apply any control traffic that arrived mid-batch first: fresher
      // thresholds suppress sends, keeping message counts near the
      // step-synchronous ideal. Costs one relaxed load per item.
      DrainControl();
      node_->OnItem(item);
    }
    batches_done_.fetch_add(1);
    bus_->NotifyProgress();
    did_work = true;
  }
  return did_work;
}

void SiteWorker::ThreadMain() {
  for (;;) {
    if (DrainOnce()) continue;
    std::unique_lock<std::mutex> lock(park_mutex_);
    if (closed_.load()) break;
    // Recheck under the park mutex: a producer that pushed after our
    // DrainOnce either sees us before wait() (its Wake blocks on the
    // mutex until we release it in wait) or we see its push here.
    if (HasWorkHint()) continue;
    park_cv_.wait(lock);
  }
}

}  // namespace dwrs::engine
