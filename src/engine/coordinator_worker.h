// The coordinator thread. Consumes the bounded MPSC message channel fed
// by all site workers and is the only thread that ever invokes the
// attached CoordinatorNode, so coordinator endpoints (whose hot path is
// the paper's O(log s) heap update) stay lock-free. Downstream sends the
// endpoint performs from OnMessage are routed to the site workers'
// control channels by the engine transport.
//
// Backpressure: the bounded inbox blocks a sending site worker when the
// coordinator falls behind; the stalled site stops draining its item
// queue, which eventually blocks the feeder — end-to-end flow control.
//
// Snapshot publication: an optional hook runs on this thread after every
// processed message, BEFORE the message's done-counter increment. The
// ordering matters: a quiesce waiter observes pushed == done only after
// the hook for the final message has returned, so at any quiesce point
// the last published snapshot is the fully-drained coordinator state —
// the edge the live-query layer's step-synchronous equivalence rests on.
// Every invocation sees the coordinator at a shard-local quiesce point
// of its delivered-message prefix (the endpoint is between OnMessage
// calls), which is what makes the published snapshots valid query
// states mid-stream.

#ifndef DWRS_ENGINE_COORDINATOR_WORKER_H_
#define DWRS_ENGINE_COORDINATOR_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "engine/channels.h"
#include "sim/node.h"

namespace dwrs::engine {

class CoordinatorWorker {
 public:
  // `trace_shard` labels this worker's flight-recorder events.
  CoordinatorWorker(sim::CoordinatorNode* node, size_t queue_capacity,
                    QuiesceBus* bus, int trace_shard = 0);
  ~CoordinatorWorker();

  CoordinatorWorker(const CoordinatorWorker&) = delete;
  CoordinatorWorker& operator=(const CoordinatorWorker&) = delete;

  // Installs the per-message snapshot hook (see the header comment).
  // Must be called before Start().
  void SetSnapshotHook(std::function<void()> hook) {
    DWRS_CHECK(!thread_.joinable()) << " set the hook before Start()";
    snapshot_hook_ = std::move(hook);
  }

  void Start();
  void RequestStop();
  void Join();

  // Site worker side (multi-producer). Blocks while the inbox is full.
  void PushMessage(int site, const sim::Payload& msg,
                   std::atomic<uint64_t>* stall_counter);

  bool Idle() const { return done_.load() == pushed_.load(); }
  uint64_t units_pushed() const { return pushed_.load(); }

 private:
  struct UpstreamMessage {
    int site = 0;
    sim::Payload msg;
  };

  void ThreadMain();
  bool DrainOnce();
  void Wake();

  sim::CoordinatorNode* const node_;
  QuiesceBus* const bus_;
  const size_t queue_capacity_;
  const int trace_shard_;
  std::function<void()> snapshot_hook_;  // coordinator thread only
  Channel<UpstreamMessage> inbox_;

  std::atomic<uint64_t> pushed_{0};
  std::atomic<uint64_t> done_{0};

  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<bool> closed_{false};
  std::thread thread_;
};

}  // namespace dwrs::engine

#endif  // DWRS_ENGINE_COORDINATOR_WORKER_H_
