#include "engine/scheduler.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::engine {

int Scheduler::ResolveWorkerCount(int num_workers, int num_sites) {
  if (num_workers > 0) return num_workers;
  // Auto: leave headroom for the feeder and coordinator threads, and
  // never spawn more workers than there are sites to run.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int budget = std::max(hw - 2, 1);
  return std::max(1, std::min(budget, num_sites));
}

Scheduler::Scheduler(const EngineConfig& config, QuiesceBus* bus,
                     EngineStats* stats)
    : control_poll_stride_(config.control_poll_stride),
      dispatch_quantum_(config.item_queue_batches),
      work_stealing_(config.work_stealing),
      trace_shard_(config.trace_shard),
      bus_(bus),
      stats_(stats) {
  DWRS_CHECK(bus != nullptr);
  DWRS_CHECK(stats != nullptr);
  DWRS_CHECK_GT(config.num_sites, 0);
  DWRS_CHECK_GT(config.item_queue_batches, 0u);
  DWRS_CHECK_GT(config.control_poll_stride, 0u);
  DWRS_CHECK_GE(config.num_workers, 0);
  sites_.resize(static_cast<size_t>(config.num_sites));
  const int n = ResolveWorkerCount(config.num_workers, config.num_sites);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
}

Scheduler::~Scheduler() {
  RequestStop();
  Join();
}

void Scheduler::AttachSite(int site, sim::SiteNode* node) {
  DWRS_CHECK(site >= 0 && site < static_cast<int>(sites_.size()));
  DWRS_CHECK(node != nullptr);
  DWRS_CHECK(!started_) << " attach before Start()";
  sites_[static_cast<size_t>(site)] = std::make_unique<LogicalSite>(
      node, site, /*queue_batches=*/dispatch_quantum_);
}

void Scheduler::Start() {
  DWRS_CHECK(!started_);
  for (size_t i = 0; i < sites_.size(); ++i) {
    DWRS_CHECK(sites_[i] != nullptr) << " site " << i << " not attached";
  }
  started_ = true;
  for (size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread =
        std::thread([this, i] { WorkerMain(static_cast<int>(i)); });
  }
}

void Scheduler::RequestStop() {
  closed_.store(true);
  for (auto& site : sites_) {
    if (site != nullptr) site->control.Close();
  }
  {
    std::lock_guard<std::mutex> lock(space_mutex_);
    space_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    park_cv_.notify_all();
  }
}

void Scheduler::Join() {
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void Scheduler::Enqueue(LogicalSite* site, int worker) {
  Worker& w = *workers_[static_cast<size_t>(worker)];
  {
    std::lock_guard<std::mutex> lock(w.mutex);
    w.queue.push_back(site);
  }
  // Counted after the push so a waker that sees the hint always finds the
  // site (the reverse order would let a woken worker scan, find nothing,
  // and spin until the push lands).
  w.queued.fetch_add(1);
  ready_.fetch_add(1);
  std::lock_guard<std::mutex> lock(park_mutex_);
  if (work_stealing_) {
    // Any worker can serve any runnable site.
    park_cv_.notify_one();
  } else {
    // Only the home worker can; notify_all guarantees it wakes.
    park_cv_.notify_all();
  }
}

void Scheduler::NotifySite(LogicalSite* site, int preferred_worker) {
  // The producer-side edge of the state machine (see scheduler.h). Every
  // branch performs the CAS — including the "unchanged" ones — because
  // the RMW's release write is what publishes this producer's queue push
  // to the worker that later observes the state.
  uint32_t cur = site->sched.load(std::memory_order_relaxed);
  for (;;) {
    uint32_t next;
    switch (cur) {
      case kSiteIdle: next = kSiteQueued; break;
      case kSiteRunning: next = kSiteNotified; break;
      default: next = cur; break;  // kSiteQueued, kSiteNotified
    }
    if (site->sched.compare_exchange_weak(cur, next,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
      if (cur == kSiteIdle) Enqueue(site, preferred_worker);
      return;
    }
  }
}

void Scheduler::PushBatch(int site, ItemBatch&& batch,
                          std::atomic<uint64_t>* stall_counter) {
  DWRS_CHECK(!batch.empty());
  LogicalSite& s = *sites_[static_cast<size_t>(site)];
  // pushed is incremented before the enqueue so a batch is never
  // invisible to the quiesce check while in flight.
  units_pushed_.fetch_add(1);
  if (!s.items.TryPush(batch)) {
    // One blocking episode, one stall count — however many times the
    // condvar wakes us before a slot frees up.
    if (stall_counter != nullptr) {
      stall_counter->fetch_add(1, std::memory_order_relaxed);
    }
    if (obs::TracingEnabled()) {
      obs::TraceEvent event;
      event.type = obs::EventType::kIngestStall;
      event.shard = static_cast<int16_t>(trace_shard_);
      event.site = site;
      event.a = batch.size();
      obs::Emit(event);
    }
    std::unique_lock<std::mutex> lock(space_mutex_);
    while (!s.items.TryPush(batch)) {
      if (closed_.load()) {
        // Shutting down mid-stream: the batch is dropped, visibly.
        units_pushed_.fetch_sub(1);
        stats_->batches_dropped_on_shutdown.fetch_add(
            1, std::memory_order_relaxed);
        return;
      }
      space_cv_.wait(lock);
    }
  }
  NotifySite(&s, static_cast<int>(s.site % num_workers()));
}

void Scheduler::PushControl(int site, const sim::Payload& msg) {
  LogicalSite& s = *sites_[static_cast<size_t>(site)];
  units_pushed_.fetch_add(1);
  if (!s.control.Push(msg)) {  // closed during shutdown
    units_pushed_.fetch_sub(1);
    return;
  }
  NotifySite(&s, static_cast<int>(s.site % num_workers()));
}

LogicalSite* Scheduler::DequeueLocal(Worker& me) {
  std::lock_guard<std::mutex> lock(me.mutex);
  if (me.queue.empty()) return nullptr;
  LogicalSite* site = me.queue.front();
  me.queue.pop_front();
  me.queued.fetch_sub(1);
  ready_.fetch_sub(1);
  return site;
}

LogicalSite* Scheduler::Steal(int thief) {
  const int n = num_workers();
  for (int i = 1; i < n; ++i) {
    Worker& victim = *workers_[static_cast<size_t>((thief + i) % n)];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.queue.empty()) continue;
    // Steal from the back: the opposite end from the victim's own pops,
    // and the site coldest in the victim's cache.
    LogicalSite* site = victim.queue.back();
    victim.queue.pop_back();
    victim.queued.fetch_sub(1);
    ready_.fetch_sub(1);
    stats_->steals.fetch_add(1, std::memory_order_relaxed);
    if (obs::TracingEnabled()) {
      obs::TraceEvent event;
      event.type = obs::EventType::kSteal;
      event.shard = static_cast<int16_t>(trace_shard_);
      event.site = site->site;
      event.a = static_cast<uint64_t>(thief);
      obs::Emit(event);
    }
    return site;
  }
  return nullptr;
}

void Scheduler::DrainControl(LogicalSite* site) {
  if (site->control.SizeApprox() == 0) return;  // the per-span fast path
  sim::Payload msg;
  bool did_work = false;
  while (site->control.TryPop(&msg)) {
    site->node->OnMessage(msg);
    units_done_.fetch_add(1);
    did_work = true;
  }
  if (did_work) bus_->NotifyProgress();
}

void Scheduler::ProcessBatch(int worker, LogicalSite* site, ItemBatch& batch) {
  // A ring slot just freed up; unblock the feeder before the batch is
  // processed so ingestion overlaps with site work. Unconditional (the
  // notify is skipped only when nobody waits, which the condvar handles):
  // a cheaper "only if the ring was full" check would race the feeder's
  // full-test and strand it.
  {
    std::lock_guard<std::mutex> lock(space_mutex_);
    space_cv_.notify_all();
  }
  // Hand the batch to the endpoint's span path in control_poll_stride
  // sub-batches, applying control traffic between them: fresher
  // thresholds still suppress sends promptly (message counts stay near
  // the step-synchronous ideal) while the endpoint's hot loop runs whole
  // spans with every loop-invariant hoisted and zero synchronization.
  const Item* data = batch.data();
  const size_t total = batch.size();
  const bool tracing = obs::TracingEnabled();
  std::chrono::steady_clock::time_point span_start;
  if (tracing) span_start = std::chrono::steady_clock::now();
  for (size_t done = 0; done < total;) {
    DrainControl(site);
    const size_t chunk = std::min(control_poll_stride_, total - done);
    site->node->OnItems(data + done, chunk);
    done += chunk;
  }
  if (tracing) {
    const auto span_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - span_start)
                             .count();
    obs::TraceEvent event;
    event.type = obs::EventType::kItemSpan;
    event.shard = static_cast<int16_t>(trace_shard_);
    event.site = site->site;
    event.a = total;  // items in the batch
    event.dur_ns =
        span_ns > 0
            ? static_cast<uint32_t>(std::min<int64_t>(span_ns, UINT32_MAX))
            : 1;
    obs::Emit(event);
  }
  // Return the drained buffer (capacity intact) to the feeder's free
  // list; if the list is momentarily full the buffer simply deallocates.
  batch.clear();
  if (site->recycled.TryPush(batch)) {
    stats_->batches_recycled.fetch_add(1, std::memory_order_relaxed);
  }
  units_done_.fetch_add(1);
  bus_->NotifyProgress();
  (void)worker;
}

void Scheduler::RunSite(int worker, LogicalSite* site) {
  // Take the site. acq_rel: the acquire side pairs with the enqueueing
  // producer's release RMW (its pushes are visible), the release side
  // hands our own drains to whoever observes kSiteRunning.
  const uint32_t prev =
      site->sched.exchange(kSiteRunning, std::memory_order_acq_rel);
  DWRS_CHECK_EQ(prev, static_cast<uint32_t>(kSiteQueued));
  stats_->sites_scheduled.fetch_add(1, std::memory_order_relaxed);
  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kSiteScheduled;
    event.shard = static_cast<int16_t>(trace_shard_);
    event.site = site->site;
    event.a = static_cast<uint64_t>(worker);
    obs::Emit(event);
  }
  size_t batches_run = 0;
  ItemBatch batch;
  for (;;) {
    DrainControl(site);
    while (batches_run < dispatch_quantum_ && site->items.TryPop(&batch)) {
      ProcessBatch(worker, site, batch);
      ++batches_run;
    }
    if (batches_run >= dispatch_quantum_ && site->HasWork()) {
      // Quantum exhausted with work left: requeue on our own queue and
      // yield the worker so a hot site cannot starve its siblings. The
      // release store also hands the ring consumer role to the next
      // dispatcher (which takes the site with an acquire exchange).
      site->sched.store(kSiteQueued, std::memory_order_release);
      Enqueue(site, worker);
      return;
    }
    // Drained everything we can see; try to go idle. A failure means a
    // producer raced in a notification — the acquire on the failure load
    // pairs with its release RMW, making its pushes visible to the
    // re-drain.
    uint32_t expected = kSiteRunning;
    if (site->sched.compare_exchange_strong(expected, kSiteIdle,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      return;
    }
    site->sched.store(kSiteRunning, std::memory_order_relaxed);
  }
}

void Scheduler::WorkerMain(int worker) {
  Worker& me = *workers_[static_cast<size_t>(worker)];
  for (;;) {
    LogicalSite* site = DequeueLocal(me);
    if (site == nullptr && work_stealing_) site = Steal(worker);
    if (site != nullptr) {
      RunSite(worker, site);
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mutex_);
    if (closed_.load()) break;
    // Recheck under the park mutex: a producer that enqueued after our
    // scan either sees its ready hint here or its notify blocks on the
    // mutex until we release it in wait().
    if (Runnable(me)) continue;
    stats_->worker_parks.fetch_add(1, std::memory_order_relaxed);
    if (obs::TracingEnabled()) {
      obs::TraceEvent event;
      event.type = obs::EventType::kWorkerPark;
      event.shard = static_cast<int16_t>(trace_shard_);
      event.a = static_cast<uint64_t>(worker);
      obs::Emit(event);
    }
    park_cv_.wait(lock);
  }
}

}  // namespace dwrs::engine
