#include "engine/coordinator_worker.h"

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::engine {

CoordinatorWorker::CoordinatorWorker(sim::CoordinatorNode* node,
                                     size_t queue_capacity, QuiesceBus* bus,
                                     int trace_shard)
    : node_(node),
      bus_(bus),
      queue_capacity_(queue_capacity),
      trace_shard_(trace_shard),
      inbox_(queue_capacity) {
  DWRS_CHECK(node != nullptr);
  DWRS_CHECK(bus != nullptr);
  DWRS_CHECK_GT(queue_capacity, 0u);
}

CoordinatorWorker::~CoordinatorWorker() {
  RequestStop();
  Join();
}

void CoordinatorWorker::Start() {
  DWRS_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { ThreadMain(); });
}

void CoordinatorWorker::RequestStop() {
  closed_.store(true);
  inbox_.Close();  // unblocks site workers stalled in PushMessage
  Wake();
}

void CoordinatorWorker::Join() {
  if (thread_.joinable()) thread_.join();
}

void CoordinatorWorker::PushMessage(int site, const sim::Payload& msg,
                                    std::atomic<uint64_t>* stall_counter) {
  pushed_.fetch_add(1);
  // The size hint mirrors the full-queue condition Push blocks on; an
  // occasional false positive/negative only costs one trace event.
  if (obs::TracingEnabled() && inbox_.SizeApprox() >= queue_capacity_) {
    obs::TraceEvent event;
    event.type = obs::EventType::kBackpressureStall;
    event.shard = static_cast<int16_t>(trace_shard_);
    event.site = site;
    event.a = inbox_.SizeApprox();
    obs::Emit(event);
  }
  if (!inbox_.Push(UpstreamMessage{site, msg}, stall_counter)) {
    pushed_.fetch_sub(1);  // closed during shutdown
    return;
  }
  Wake();
}

void CoordinatorWorker::Wake() {
  std::lock_guard<std::mutex> lock(park_mutex_);
  park_cv_.notify_one();
}

bool CoordinatorWorker::DrainOnce() {
  UpstreamMessage m;
  bool did_work = false;
  while (inbox_.TryPop(&m)) {
    node_->OnMessage(m.site, m.msg);
    // Publish before counting the message done: a quiesce waiter that
    // observes pushed == done is then guaranteed to read a snapshot that
    // includes this message (see the header comment).
    if (snapshot_hook_) snapshot_hook_();
    done_.fetch_add(1);
    did_work = true;
  }
  if (did_work) bus_->NotifyProgress();
  return did_work;
}

void CoordinatorWorker::ThreadMain() {
  for (;;) {
    if (DrainOnce()) continue;
    std::unique_lock<std::mutex> lock(park_mutex_);
    if (closed_.load()) break;
    if (inbox_.SizeApprox() > 0) continue;
    park_cv_.wait(lock);
  }
}

}  // namespace dwrs::engine
