// The concurrent execution engine: the production-oriented counterpart of
// the step-synchronous sim::Runtime. Sites are *logical*: each is a unit
// of per-site state (bounded SPSC queue of ingestion batches + control
// inbox) multiplexed over a fixed work-stealing worker pool (see
// scheduler.h), so k is bounded by memory, not by thread count; protocol
// messages flow to a dedicated coordinator thread over a bounded MPSC
// channel with end-to-end backpressure; coordinator->site control traffic
// returns over per-site channels. Endpoints implement the same
// sim::SiteNode / sim::CoordinatorNode / sim::Transport interfaces as
// under the simulator (sim/node.h), so WsworSite/WsworCoordinator, the
// naive baseline, and the unweighted substrate run unmodified on either
// backend.
//
//   engine::Engine eng({.num_sites = k});
//   // build endpoints against eng.transport(), then:
//   for (int i = 0; i < k; ++i) eng.AttachSite(i, sites[i]);
//   eng.AttachCoordinator(&coord);
//   eng.Run(workload);          // batched, pipelined; quiescent on return
//   auto sample = coord.Sample();  // legal: Run ends at a quiesce point
//
// Querying endpoints is legal exactly at quiesce points — after Run() or
// Flush() returns, or inside a Run() on_step hook (which forces
// step-synchronous execution). The quiesce handshake establishes the
// happens-before edge that makes worker-thread writes visible to the
// caller; see the threading contract in core/coordinator.h.
//
// Ingestion (Push/Run/Flush) is single-threaded by contract: the calling
// thread is the feeder and the single producer of every item queue.
//
// Teardown: endpoints are non-owned and worker threads call into them,
// so an endpoint must never be destroyed while the engine is running
// non-quiescently. Safe patterns: (a) let Run()/Flush() return (the
// engine is quiescent; parked workers touch no endpoint again), (b) call
// Shutdown() before the endpoints go out of scope, or (c) declare the
// endpoints before the Engine so the Engine — which joins its workers in
// its destructor — dies first. Destroying endpoints below a mid-stream
// engine is a use-after-free on the worker threads.
//
// Tickers (sim::Runtime::AttachTicker) are not supported: OnRound models
// the synchronous round structure of the paper, which a pipelined engine
// deliberately gives up. Time-driven protocols (sliding window) stay on
// the simulator backend.

#ifndef DWRS_ENGINE_ENGINE_H_
#define DWRS_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/channels.h"
#include "engine/config.h"
#include "engine/coordinator_worker.h"
#include "engine/scheduler.h"
#include "engine/stats.h"
#include "sim/node.h"
#include "stream/item.h"
#include "stream/workload.h"

namespace dwrs::engine {

class Engine : public sim::Transport {
 public:
  explicit Engine(const EngineConfig& config);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // The transport endpoints are constructed against (mirrors
  // sim::Runtime::network()).
  sim::Transport& transport() { return *this; }
  int num_sites() const { return config_.num_sites; }
  // Resolved size of the scheduler's worker pool (config().num_workers
  // with 0 = auto resolved; see EngineConfig).
  int num_workers() const {
    return Scheduler::ResolveWorkerCount(config_.num_workers,
                                         config_.num_sites);
  }
  const EngineConfig& config() const { return config_; }
  const EngineStats& stats() const { return stats_; }
  // For attached instrumentation that accounts work it performs on this
  // engine's threads (the snapshot hook counting its publishes); the
  // counters are atomics, so any thread may increment.
  EngineStats& stats_mutable() { return stats_; }

  // Non-owning; endpoints must outlive the engine. All sites and the
  // coordinator must be attached before the first Push/Run/Flush.
  void AttachSite(int site, sim::SiteNode* node);
  void AttachCoordinator(sim::CoordinatorNode* node);

  // Installs a snapshot-publication hook that the coordinator thread
  // invokes after every processed message (before the message's
  // done-counter increment; see engine/coordinator_worker.h). The hook
  // may read the attached coordinator endpoint and this engine's stats —
  // it runs on the one thread that owns the endpoint — and must publish
  // through a mechanism readers can consume lock-free (the intended one
  // is query::SnapshotPublisher). Must be installed before the first
  // Push/Run/Flush.
  void SetSnapshotHook(std::function<void()> hook);

  // Feeds one event into the site's current ingestion batch; hands the
  // batch to the site worker every config().batch_size items (blocking
  // when the site's queue is full). Feeder thread only.
  void Push(int site, const Item& item);

  // Span ingestion: appends `n` items for `site` in whole-batch copies —
  // the zero-per-item-overhead feeder path (batch buffers are recycled
  // through a free list, so steady-state ingestion performs no heap
  // allocation at all). Feeder thread only.
  void Push(int site, const Item* items, size_t n);

  // Hands off all partial batches and blocks until the engine is fully
  // quiescent: all item queues drained, all messages processed, no
  // endpoint callback running. On return, querying endpoints is legal.
  void Flush();

  // Runs the full workload and ends with Flush(). If `on_step` is set the
  // run is step-synchronous: the engine quiesces after every event and
  // invokes the hook with the 1-based prefix length — the continuous-
  // query mode, mirroring sim::Runtime::Run. With config().step_synchronous
  // the same pacing applies even without a hook.
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  // Runs the workload under an externally materialized arrival schedule
  // (stream/dynamics.h): round r feeds the next batches[r] events in
  // arrival order, so bursty/diurnal scenarios drive the ingestion queues
  // at their modeled rates instead of one steady drip. `batches` must sum
  // to workload.size(). If `on_round` is set the engine quiesces at each
  // round boundary and invokes it with the 1-based prefix length (items
  // fed so far). With config().step_synchronous the engine quiesces after
  // every event — the pacing then changes nothing observable and the run
  // is bit-identical to Run() and to the simulator, which is what lets
  // paced scenario cells be replayed exactly for the envelope gate.
  void RunPaced(const Workload& workload, const std::vector<uint32_t>& batches,
                const std::function<void(uint64_t)>& on_round = nullptr);

  // Stops and joins all worker threads (idempotent; the destructor calls
  // it). Pending un-flushed work may be dropped; call Flush() first for a
  // clean end of stream.
  void Shutdown();

  // --- sim::Transport (called from worker threads) --------------------
  void SendToCoordinator(int site, const sim::Payload& msg) override;
  void SendToSite(int site, const sim::Payload& msg) override;
  void Broadcast(const sim::Payload& msg) override;
  // Events handed off to workers so far. Runs ahead of any individual
  // endpoint's progress by at most the queued batches (exact at quiesce
  // points and in step-synchronous mode).
  uint64_t step() const override {
    return steps_.load(std::memory_order_relaxed);
  }

 private:
  void Start();
  void HandOffBatch(int site);
  void RefillPending(int site);
  void CollectSiteCounters();
  void WaitQuiesce();
  bool AllIdle() const;
  uint64_t TotalUnitsPushed() const;
  void Account(const sim::Payload& msg, bool upstream);

  const EngineConfig config_;
  EngineStats stats_;
  QuiesceBus bus_;

  std::vector<sim::SiteNode*> site_nodes_;
  sim::CoordinatorNode* coordinator_node_ = nullptr;
  std::function<void()> snapshot_hook_;

  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<CoordinatorWorker> coordinator_worker_;

  std::vector<ItemBatch> pending_;  // per-site ingestion buffers
  std::atomic<uint64_t> steps_{0};
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace dwrs::engine

#endif  // DWRS_ENGINE_ENGINE_H_
