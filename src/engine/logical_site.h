// A logical site: the per-site state the work-stealing scheduler
// multiplexes over its fixed worker pool. Where the old engine spawned
// one OS thread per site (capping the system at roughly one site per
// core), a LogicalSite is just data — an SPSC ring of ingestion batches,
// a control inbox, a free list of recycled batch buffers, and one atomic
// scheduling word — so a single box can host 10^5..10^6 of them.
//
// Scheduling protocol (the full state machine lives in scheduler.h):
// `sched` moves through kIdle -> kQueued -> kRunning (-> kNotified ->
// kRunning...) -> kIdle. Producers notify via an unconditional RMW on
// `sched`, which both prevents double-enqueueing and carries the
// happens-before edge that makes a producer's ring/inbox writes visible
// to whichever worker runs the site next — the single-threaded endpoint
// contract of sim/node.h holds even though consecutive dispatches of one
// site may land on different workers.

#ifndef DWRS_ENGINE_LOGICAL_SITE_H_
#define DWRS_ENGINE_LOGICAL_SITE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/channels.h"
#include "sim/node.h"
#include "stream/item.h"

namespace dwrs::engine {

using ItemBatch = std::vector<Item>;

// Values of LogicalSite::sched. Transitions:
//   producers (feeder / coordinator thread / other workers):
//     kIdle    -> kQueued    enqueue on the home worker's run queue
//     kRunning -> kNotified  the running worker re-drains before idling
//     kQueued / kNotified    unchanged (still an RMW: the write is what
//                            publishes the producer's queue pushes to the
//                            next dispatching worker)
//   the dispatching worker:
//     kQueued   -> kRunning  on dispatch (acquire: see producer pushes)
//     kRunning  -> kIdle     drained and no notification raced in
//     kNotified -> kRunning  notification raced in: drain again
//     kRunning  -> kQueued   dispatch quantum exhausted: requeue locally
enum SiteSchedState : uint32_t {
  kSiteIdle = 0,
  kSiteQueued = 1,
  kSiteRunning = 2,
  kSiteNotified = 3,
};

struct LogicalSite {
  LogicalSite(sim::SiteNode* node, int site, size_t queue_batches)
      : node(node),
        site(site),
        items(queue_batches),
        // One slot per in-flight batch plus slack for the buffer the
        // feeder is filling and the one a worker is draining, so the free
        // list never overflows in the steady state.
        recycled(queue_batches + 2),
        control(0) {}

  LogicalSite(const LogicalSite&) = delete;
  LogicalSite& operator=(const LogicalSite&) = delete;

  // Any work a dispatching worker could pick up right now. Safe from any
  // thread; the scheduling protocol (not this hint) is what guarantees no
  // work is stranded.
  bool HasWork() const { return !items.Empty() || control.SizeApprox() > 0; }

  sim::SiteNode* const node;
  const int site;
  SpscRing<ItemBatch> items;     // feeder -> running worker (whole batches)
  SpscRing<ItemBatch> recycled;  // running worker -> feeder (drained buffers)
  Channel<sim::Payload> control;  // coordinator -> site, unbounded
  std::atomic<uint32_t> sched{kSiteIdle};
};

}  // namespace dwrs::engine

#endif  // DWRS_ENGINE_LOGICAL_SITE_H_
