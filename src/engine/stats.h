// Traffic and execution counters of the concurrent engine — the
// counterpart of sim::MessageStats, extended with engine-specific
// counters (batches, backpressure stalls, quiesce points).
//
// All fields are atomics because they are written from site threads, the
// coordinator thread, and the feeder concurrently. Increments use relaxed
// ordering: exact totals are only read at quiesce points, where the
// engine's pushed/done counter handshake already establishes the
// happens-before edges that make the relaxed writes visible.

#ifndef DWRS_ENGINE_STATS_H_
#define DWRS_ENGINE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "sim/message.h"

namespace dwrs::engine {

struct EngineStats {
  // Message traffic, mirroring sim::MessageStats field for field.
  std::atomic<uint64_t> site_to_coord{0};
  std::atomic<uint64_t> coord_to_site{0};
  std::atomic<uint64_t> broadcast_events{0};
  std::atomic<uint64_t> words{0};
  std::array<std::atomic<uint64_t>, 32> by_type{};

  // Engine execution counters.
  std::atomic<uint64_t> items_ingested{0};
  std::atomic<uint64_t> batches_ingested{0};
  std::atomic<uint64_t> ingest_stalls{0};    // feeder blocked: item queue full
  std::atomic<uint64_t> upstream_stalls{0};  // site blocked: MPSC channel full
  std::atomic<uint64_t> quiesces{0};

  // Scheduler counters: logical-site dispatches onto pool workers, sites
  // a dry worker stole from a sibling's run queue, times a worker parked
  // on the shared bus with nothing runnable, and ingestion batches
  // dropped because shutdown was requested while the feeder was blocked
  // on a full site ring (nonzero iff item accounting is allowed not to
  // reconcile: items_ingested counts them, no endpoint saw them).
  std::atomic<uint64_t> sites_scheduled{0};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> worker_parks{0};
  std::atomic<uint64_t> batches_dropped_on_shutdown{0};

  // Batch-buffer pool: drained buffers returned to the feeder's free list
  // vs. hand-offs that had to allocate because the list was empty (cold
  // start). In the steady state recycled tracks batches_ingested and
  // misses stays at ~item_queue_batches.
  std::atomic<uint64_t> batches_recycled{0};
  std::atomic<uint64_t> batch_pool_misses{0};

  // Live-query publication: snapshots this engine's coordinator hook
  // pushed into its SnapshotPublisher ring (one per processed
  // coordinator message when live queries are enabled, plus the eager
  // initial publish). The cached query path's copies-avoided counter
  // lives with the QueryService (query/query_service.h) — this side
  // counts what the ingestion thread paid.
  std::atomic<uint64_t> snapshot_publishes{0};

  // Site hot-path counters (Proposition 7 accounting), summed over the
  // attached endpoints at each quiesce point — keys_decided threshold
  // decisions consuming key_bits_consumed random bits, of which
  // skips_taken were absorbed by geometric-skip thinning at zero RNG
  // cost. Zero for endpoints that do not export counters.
  std::atomic<uint64_t> keys_decided{0};
  std::atomic<uint64_t> key_bits_consumed{0};
  std::atomic<uint64_t> skips_taken{0};

  uint64_t total_messages() const {
    return site_to_coord.load(std::memory_order_relaxed) +
           coord_to_site.load(std::memory_order_relaxed);
  }

  // Snapshot of the traffic counters in the simulator's stats type, so
  // sim-vs-engine comparisons and existing reporting code work unchanged.
  // Only meaningful at a quiesce point.
  sim::MessageStats MessageSnapshot() const;

  std::string ToString() const;
};

}  // namespace dwrs::engine

#endif  // DWRS_ENGINE_STATS_H_
