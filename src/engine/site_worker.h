// One worker thread per site. The worker owns the consumer side of the
// site's bounded SPSC item queue (slots are whole ingestion batches) and
// of its control channel (coordinator -> site), and is the only thread
// that ever invokes the attached SiteNode — endpoints therefore need no
// locking (see the contract in sim/node.h).
//
// Quiesce accounting: every unit of work (one item batch, one control
// message) increments a pushed counter before it is enqueued and a done
// counter only after the endpoint callback — including any sends the
// callback performed, which increment other queues' pushed counters
// first — has returned. Hence at any instant where all pushed==done
// across the engine, no work exists and none is in flight.

#ifndef DWRS_ENGINE_SITE_WORKER_H_
#define DWRS_ENGINE_SITE_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/channels.h"
#include "engine/stats.h"
#include "sim/node.h"
#include "stream/item.h"

namespace dwrs::engine {

using ItemBatch = std::vector<Item>;

class SiteWorker {
 public:
  // `control_poll_stride`: items handed to the endpoint per OnItems span
  // between control-channel polls. `stats` (non-owned, may outlive this
  // worker) receives recycling counters. `site`/`trace_shard` label this
  // worker's flight-recorder events.
  SiteWorker(sim::SiteNode* node, size_t queue_batches,
             size_t control_poll_stride, QuiesceBus* bus, EngineStats* stats,
             int site = 0, int trace_shard = 0);
  ~SiteWorker();

  SiteWorker(const SiteWorker&) = delete;
  SiteWorker& operator=(const SiteWorker&) = delete;

  void Start();
  // Closes both inbound channels and wakes the thread; Join() reaps it.
  void RequestStop();
  void Join();

  // Feeder side (single producer). Blocks while the item ring is full —
  // the engine's ingestion backpressure. Counts waits in `stall_counter`.
  void PushBatch(ItemBatch&& batch, std::atomic<uint64_t>* stall_counter);

  // Coordinator side. Never blocks (the control channel is unbounded to
  // break the site⇄coordinator wait cycle; see channels.h).
  void PushControl(const sim::Payload& msg);

  // Feeder side: pops a recycled (empty, capacity-retaining) batch buffer
  // off the worker's free list. Returns false when none is available yet
  // (cold start) — the feeder then allocates. Steady-state ingestion
  // cycles the same buffers feeder -> worker -> feeder with zero heap
  // traffic.
  bool TryGetRecycled(ItemBatch* out) { return recycled_.TryPop(out); }

  // True iff every pushed unit has been fully processed.
  bool Idle() const {
    return batches_done_.load() == batches_pushed_.load() &&
           ctrl_done_.load() == ctrl_pushed_.load();
  }
  // Monotone work-creation counter, used by the double-scan quiesce check.
  uint64_t units_pushed() const {
    return batches_pushed_.load() + ctrl_pushed_.load();
  }

 private:
  void ThreadMain();
  bool DrainOnce();
  void DrainControl();
  bool HasWorkHint() const {
    return !items_.Empty() || control_.SizeApprox() > 0;
  }
  void Wake();

  sim::SiteNode* const node_;
  QuiesceBus* const bus_;
  EngineStats* const stats_;
  const size_t control_poll_stride_;
  const int site_;
  const int trace_shard_;
  SpscRing<ItemBatch> items_;
  // Free list of drained batch buffers flowing back to the feeder
  // (worker = producer, feeder = consumer; SPSC like items_, reversed).
  SpscRing<ItemBatch> recycled_;
  Channel<sim::Payload> control_;  // unbounded

  std::atomic<uint64_t> batches_pushed_{0};
  std::atomic<uint64_t> batches_done_{0};
  std::atomic<uint64_t> ctrl_pushed_{0};
  std::atomic<uint64_t> ctrl_done_{0};

  std::mutex park_mutex_;  // worker parks here when idle
  std::condition_variable park_cv_;
  std::mutex space_mutex_;  // feeder parks here when the ring is full
  std::condition_variable space_cv_;
  std::atomic<bool> closed_{false};
  std::thread thread_;
};

}  // namespace dwrs::engine

#endif  // DWRS_ENGINE_SITE_WORKER_H_
