// Write-ahead log: CRC32-framed, length-prefixed records in an
// append-only file, with group commit so the ingest hot path only
// enqueues bytes and a flush worker (or the step loop, in deterministic
// mode) pays the write+fsync cost.
//
// File format (all fixed-width integers little-endian):
//
//   "DWAL"  magic (4 bytes)
//   u8      format version (kWalFormatVersion); readers reject others
//   frame*  where frame = u32 payload length | u32 CRC32(payload)
//           | payload bytes
//
// The payload of every frame is an encoded durability::WalRecord
// (records.h), but the framing layer is content-agnostic. A reader
// accepts the longest valid prefix: it stops at the first frame whose
// length runs past EOF or whose CRC mismatches — a torn tail from a
// mid-write kill — and reports how many valid bytes precede it. It
// never resynchronizes past a bad frame: a valid-looking record after
// garbage cannot be trusted (the paper-level guarantee is "recover a
// prefix, flagged", never "skip and hope").
//
// Durability model: Append() buffers in user space (lost on kill -9,
// which AbandonPending() models for the in-process harness); Commit()
// write()s the buffer to the kernel and optionally fdatasync()s. Group
// commit batches many appends per commit, trading a bounded loss window
// (the records since the last commit) for ingest throughput — the knobs
// and the tradeoff table live in README.md.

#ifndef DWRS_DURABILITY_WAL_H_
#define DWRS_DURABILITY_WAL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dwrs::durability {

inline constexpr char kWalMagic[4] = {'D', 'W', 'A', 'L'};
inline constexpr uint8_t kWalFormatVersion = 1;
inline constexpr size_t kWalHeaderSize = 5;
inline constexpr size_t kWalFrameOverhead = 8;  // length + crc

// CRC-32 (IEEE 802.3 polynomial, reflected), the zlib/gzip checksum.
// Self-contained table implementation — no external dependency. The
// classic check vector: Crc32 of "123456789" is 0xCBF43926.
uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed = 0);

struct WalWriterOptions {
  // fdatasync after every Commit (the durability boundary; without it a
  // commit survives process death but not power loss).
  bool fsync_commits = false;
  // Group commit: a background flush worker commits every
  // flush_interval_us, or as soon as flush_bytes are pending. With
  // group_commit false the owner calls Commit() itself (the
  // deterministic harness commits at step boundaries).
  bool group_commit = false;
  uint64_t flush_interval_us = 2000;
  size_t flush_bytes = 256 * 1024;
};

struct WalStats {
  uint64_t appends = 0;
  uint64_t commits = 0;
  uint64_t fsyncs = 0;
  uint64_t bytes_appended = 0;   // framed bytes enqueued
  uint64_t bytes_committed = 0;  // framed bytes handed to the kernel
};

// Single-writer append handle for one WAL segment file. Append() is the
// hot-path entry; with group commit enabled it is safe against the flush
// worker (one mutex-protected buffer swap per commit), otherwise the
// owner thread does everything.
class WalWriter {
 public:
  // Creates (truncating) or appends to `path`; a new file gets the
  // header. ok() is false (with error()) on any I/O failure.
  WalWriter(const std::string& path, const WalWriterOptions& options,
            bool truncate = true);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  bool ok() const { return fd_ >= 0 && error_.empty(); }
  const std::string& error() const { return error_; }
  const std::string& path() const { return path_; }

  // Frames `payload` into the pending buffer. Returns the framed size.
  size_t Append(const std::vector<uint8_t>& payload);

  // Writes every pending frame to the kernel (+fdatasync when
  // configured). Returns false on I/O error. Idempotent when nothing is
  // pending.
  bool Commit();

  // Drops the pending (uncommitted) buffer — the user-space bytes a
  // kill -9 would lose. The in-process kill harness calls this instead
  // of Commit() when tearing a shard down.
  void AbandonPending();

  // Commit() + fdatasync regardless of fsync_commits, then close. The
  // destructor calls this; explicit Close lets callers observe errors.
  bool Close();

  size_t pending_bytes() const;
  WalStats stats() const;

 private:
  bool WriteAll(const uint8_t* data, size_t n);
  bool CommitLocked(std::unique_lock<std::mutex>& lock);
  void FlushWorkerMain();

  std::string path_;
  WalWriterOptions options_;
  int fd_ = -1;
  std::string error_;

  mutable std::mutex mutex_;
  std::vector<uint8_t> pending_;
  WalStats stats_;

  std::thread flush_worker_;
  std::condition_variable flush_cv_;
  bool stop_worker_ = false;
};

// Result of scanning one WAL segment.
struct WalReadResult {
  bool ok = false;           // header valid and readable at all
  std::string error;         // why ok is false
  std::vector<std::vector<uint8_t>> payloads;  // the valid prefix
  uint64_t valid_bytes = 0;  // header + valid frames
  // Bytes exist past the valid prefix (torn frame, bad CRC, garbage).
  // The caller decides whether that is expected (mid-write kill) or a
  // flagged corruption.
  bool truncated_tail = false;
};

// Scans `path`, returning the longest valid prefix of frames. A missing
// file is ok=false with error set; an empty-but-valid-header file is
// ok=true with zero payloads.
WalReadResult ReadWalFile(const std::string& path);

}  // namespace dwrs::durability

#endif  // DWRS_DURABILITY_WAL_H_
