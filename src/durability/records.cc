#include "durability/records.h"

#include <cstring>

#include "sim/codec.h"

namespace dwrs::durability {

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kMessage: return "message";
    case WalRecordType::kThresholdBump: return "threshold_bump";
    case WalRecordType::kEpochChange: return "epoch_change";
    case WalRecordType::kSampleDelta: return "sample_delta";
    case WalRecordType::kStepMark: return "step_mark";
    case WalRecordType::kCheckpointMark: return "checkpoint_mark";
  }
  return "unknown";
}

void PutF64(std::vector<uint8_t>* out, double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

std::optional<double> GetF64(const std::vector<uint8_t>& in, size_t* pos) {
  if (*pos + 8 > in.size()) return std::nullopt;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(in[*pos + static_cast<size_t>(i)])
            << (8 * i);
  }
  *pos += 8;
  double x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

void PutZigzag(std::vector<uint8_t>* out, int64_t x) {
  const uint64_t u = static_cast<uint64_t>(x);
  sim::PutVarint(out, (u << 1) ^ static_cast<uint64_t>(x >> 63));
}

std::optional<int64_t> GetZigzag(const std::vector<uint8_t>& in, size_t* pos) {
  const std::optional<uint64_t> u = sim::GetVarint(in, pos);
  if (!u) return std::nullopt;
  return static_cast<int64_t>((*u >> 1) ^ (~(*u & 1) + 1));
}

std::vector<uint8_t> EncodeWalRecord(const WalRecord& record) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kMessage: {
      sim::PutVarint(&out, static_cast<uint64_t>(record.site));
      const std::vector<uint8_t> wire = sim::EncodePayload(record.msg);
      sim::PutVarint(&out, wire.size());
      out.insert(out.end(), wire.begin(), wire.end());
      break;
    }
    case WalRecordType::kThresholdBump:
      PutF64(&out, record.threshold);
      break;
    case WalRecordType::kEpochChange:
      PutZigzag(&out, record.epoch);
      break;
    case WalRecordType::kSampleDelta:
      sim::PutVarint(&out, record.added.item.id);
      PutF64(&out, record.added.item.weight);
      PutF64(&out, record.added.key);
      out.push_back(record.evicted_valid ? 1 : 0);
      if (record.evicted_valid) sim::PutVarint(&out, record.evicted_id);
      break;
    case WalRecordType::kStepMark:
    case WalRecordType::kCheckpointMark:
      sim::PutVarint(&out, record.step);
      break;
  }
  return out;
}

std::optional<WalRecord> DecodeWalRecord(const std::vector<uint8_t>& bytes) {
  if (bytes.empty()) return std::nullopt;
  WalRecord record;
  record.type = static_cast<WalRecordType>(bytes[0]);
  size_t pos = 1;
  switch (record.type) {
    case WalRecordType::kMessage: {
      const std::optional<uint64_t> site = sim::GetVarint(bytes, &pos);
      const std::optional<uint64_t> len = sim::GetVarint(bytes, &pos);
      if (!site || !len || pos + *len > bytes.size()) return std::nullopt;
      record.site = static_cast<int>(*site);
      const std::vector<uint8_t> wire(
          bytes.begin() + static_cast<ptrdiff_t>(pos),
          bytes.begin() + static_cast<ptrdiff_t>(pos + *len));
      const std::optional<sim::Payload> msg = sim::DecodePayload(wire);
      if (!msg) return std::nullopt;
      record.msg = *msg;
      pos += *len;
      break;
    }
    case WalRecordType::kThresholdBump: {
      const std::optional<double> threshold = GetF64(bytes, &pos);
      if (!threshold) return std::nullopt;
      record.threshold = *threshold;
      break;
    }
    case WalRecordType::kEpochChange: {
      const std::optional<int64_t> epoch = GetZigzag(bytes, &pos);
      if (!epoch) return std::nullopt;
      record.epoch = *epoch;
      break;
    }
    case WalRecordType::kSampleDelta: {
      const std::optional<uint64_t> id = sim::GetVarint(bytes, &pos);
      const std::optional<double> weight = GetF64(bytes, &pos);
      const std::optional<double> key = GetF64(bytes, &pos);
      if (!id || !weight || !key || pos + 1 > bytes.size()) {
        return std::nullopt;
      }
      record.added.item.id = *id;
      record.added.item.weight = *weight;
      record.added.key = *key;
      const uint8_t evicted = bytes[pos++];
      if (evicted > 1) return std::nullopt;
      record.evicted_valid = evicted == 1;
      if (record.evicted_valid) {
        const std::optional<uint64_t> evicted_id = sim::GetVarint(bytes, &pos);
        if (!evicted_id) return std::nullopt;
        record.evicted_id = *evicted_id;
      }
      break;
    }
    case WalRecordType::kStepMark:
    case WalRecordType::kCheckpointMark: {
      const std::optional<uint64_t> step = sim::GetVarint(bytes, &pos);
      if (!step) return std::nullopt;
      record.step = *step;
      break;
    }
    default:
      return std::nullopt;
  }
  if (pos != bytes.size()) return std::nullopt;  // trailing bytes
  return record;
}

}  // namespace dwrs::durability
