#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::durability {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU32Le(std::vector<uint8_t>* out, uint32_t x) {
  out->push_back(static_cast<uint8_t>(x));
  out->push_back(static_cast<uint8_t>(x >> 8));
  out->push_back(static_cast<uint8_t>(x >> 16));
  out->push_back(static_cast<uint8_t>(x >> 24));
}

uint32_t GetU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

// A single frame may not dwarf the file: a corrupted length field would
// otherwise make the reader attempt a multi-gigabyte allocation.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

WalWriter::WalWriter(const std::string& path, const WalWriterOptions& options,
                     bool truncate)
    : path_(path), options_(options) {
  const int flags =
      truncate ? (O_CREAT | O_WRONLY | O_TRUNC) : (O_CREAT | O_WRONLY);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    error_ = "open failed: " + std::string(std::strerror(errno));
    return;
  }
  if (truncate) {
    std::vector<uint8_t> header(kWalMagic, kWalMagic + 4);
    header.push_back(kWalFormatVersion);
    if (!WriteAll(header.data(), header.size())) return;
  } else {
    if (::lseek(fd_, 0, SEEK_END) < 0) {
      error_ = "lseek failed: " + std::string(std::strerror(errno));
      return;
    }
  }
  if (options_.group_commit) {
    flush_worker_ = std::thread([this] { FlushWorkerMain(); });
  }
}

WalWriter::~WalWriter() { Close(); }

size_t WalWriter::Append(const std::vector<uint8_t>& payload) {
  DWRS_CHECK_LE(payload.size(), static_cast<size_t>(kMaxFrameBytes));
  const uint32_t crc = Crc32(payload.data(), payload.size());
  bool wake = false;
  size_t framed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PutU32Le(&pending_, static_cast<uint32_t>(payload.size()));
    PutU32Le(&pending_, crc);
    pending_.insert(pending_.end(), payload.begin(), payload.end());
    framed = payload.size() + kWalFrameOverhead;
    ++stats_.appends;
    stats_.bytes_appended += framed;
    wake = options_.group_commit && pending_.size() >= options_.flush_bytes;
  }
  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kWalAppend;
    event.a = framed;
    obs::Emit(event);
  }
  if (wake) flush_cv_.notify_one();
  return framed;
}

bool WalWriter::WriteAll(const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd_, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      error_ = "write failed: " + std::string(std::strerror(errno));
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

bool WalWriter::CommitLocked(std::unique_lock<std::mutex>& lock) {
  if (pending_.empty()) return error_.empty();
  // Swap the buffer out so appenders keep enqueueing while the kernel
  // write (and fsync) proceeds unlocked — the group-commit point.
  std::vector<uint8_t> batch;
  batch.swap(pending_);
  lock.unlock();
  const bool write_ok = WriteAll(batch.data(), batch.size());
  bool fsync_ok = true;
  if (write_ok && options_.fsync_commits) {
    fsync_ok = ::fdatasync(fd_) == 0;
    if (!fsync_ok) {
      error_ = "fdatasync failed: " + std::string(std::strerror(errno));
    }
  }
  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kWalFsync;
    event.a = batch.size();
    obs::Emit(event);
  }
  lock.lock();
  ++stats_.commits;
  if (write_ok && options_.fsync_commits && fsync_ok) ++stats_.fsyncs;
  if (write_ok) stats_.bytes_committed += batch.size();
  return write_ok && fsync_ok;
}

bool WalWriter::Commit() {
  if (fd_ < 0) return false;
  std::unique_lock<std::mutex> lock(mutex_);
  return CommitLocked(lock);
}

void WalWriter::AbandonPending() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
}

bool WalWriter::Close() {
  if (flush_worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_worker_ = true;
    }
    flush_cv_.notify_one();
    flush_worker_.join();
  }
  if (fd_ < 0) return error_.empty();
  bool ok = true;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ok = CommitLocked(lock);
  }
  if (ok) {
    if (::fdatasync(fd_) != 0) {
      error_ = "fdatasync failed: " + std::string(std::strerror(errno));
      ok = false;
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.fsyncs;
    }
  }
  ::close(fd_);
  fd_ = -1;
  return ok && error_.empty();
}

size_t WalWriter::pending_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

WalStats WalWriter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void WalWriter::FlushWorkerMain() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_worker_) {
    flush_cv_.wait_for(
        lock, std::chrono::microseconds(options_.flush_interval_us), [this] {
          return stop_worker_ || pending_.size() >= options_.flush_bytes;
        });
    if (stop_worker_) break;
    CommitLocked(lock);
  }
}

WalReadResult ReadWalFile(const std::string& path) {
  WalReadResult out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    out.error = "open failed: " + std::string(std::strerror(errno));
    return out;
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);

  if (bytes.size() < kWalHeaderSize ||
      std::memcmp(bytes.data(), kWalMagic, 4) != 0) {
    out.error = "bad WAL magic";
    return out;
  }
  if (bytes[4] != kWalFormatVersion) {
    out.error = "unsupported WAL format version " + std::to_string(bytes[4]);
    return out;
  }
  out.ok = true;
  size_t pos = kWalHeaderSize;
  while (pos + kWalFrameOverhead <= bytes.size()) {
    const uint32_t len = GetU32Le(bytes.data() + pos);
    const uint32_t crc = GetU32Le(bytes.data() + pos + 4);
    if (len > kMaxFrameBytes ||
        pos + kWalFrameOverhead + len > bytes.size()) {
      break;  // torn or garbage length field: end of valid prefix
    }
    const uint8_t* payload = bytes.data() + pos + kWalFrameOverhead;
    if (Crc32(payload, len) != crc) break;  // bit flip or torn payload
    out.payloads.emplace_back(payload, payload + len);
    pos += kWalFrameOverhead + len;
  }
  out.valid_bytes = pos;
  out.truncated_tail = pos < bytes.size();
  return out;
}

}  // namespace dwrs::durability
