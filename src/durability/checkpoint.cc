#include "durability/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "durability/records.h"
#include "durability/wal.h"
#include "sim/codec.h"

namespace dwrs::durability {

namespace {

void PutU64Le(std::vector<uint8_t>* out, uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(x >> (8 * i)));
  }
}

void PutU32Le(std::vector<uint8_t>* out, uint32_t x) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(x >> (8 * i)));
  }
}

void PutMsg(std::vector<uint8_t>* out, const sim::Payload& msg) {
  const std::vector<uint8_t> wire = sim::EncodePayload(msg);
  sim::PutVarint(out, wire.size());
  out->insert(out->end(), wire.begin(), wire.end());
}

void PutSample(std::vector<uint8_t>* out, const MergeableSample& sample) {
  out->push_back(static_cast<uint8_t>(sample.kind));
  sim::PutVarint(out, sample.target_size);
  sim::PutVarint(out, sample.state_version);
  sim::PutVarint(out, sample.entries.size());
  for (const KeyedItem& e : sample.entries) {
    sim::PutVarint(out, e.item.id);
    PutF64(out, e.item.weight);
    PutF64(out, e.key);
  }
  sim::PutVarint(out, sample.withheld.size());
  for (const LeveledKeyedItem& w : sample.withheld) {
    sim::PutVarint(out, w.entry.item.id);
    PutF64(out, w.entry.item.weight);
    PutF64(out, w.entry.key);
    PutZigzag(out, w.level);
  }
  sim::PutVarint(out, sample.level_counts.size());
  for (const LevelCount& lc : sample.level_counts) {
    PutZigzag(out, lc.level);
    sim::PutVarint(out, lc.count);
  }
  sim::PutVarint(out, sample.slots.size());
  for (const MergeableSample::Slot& slot : sample.slots) {
    out->push_back(slot.filled ? 1 : 0);
    PutF64(out, slot.key);
    sim::PutVarint(out, slot.item.id);
    PutF64(out, slot.item.weight);
  }
  PutF64(out, sample.scalar);
}

void PutMessageStats(std::vector<uint8_t>* out, const sim::MessageStats& m) {
  sim::PutVarint(out, m.site_to_coord);
  sim::PutVarint(out, m.coord_to_site);
  sim::PutVarint(out, m.broadcast_events);
  sim::PutVarint(out, m.words);
  for (uint64_t v : m.by_type) sim::PutVarint(out, v);
}

// Sequential decoder: every getter returns a default and latches
// failure on truncation/malformation, so call sites stay linear and one
// final ok() check covers the whole body.
class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& bytes, size_t pos)
      : bytes_(bytes), pos_(pos) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  uint64_t Varint() {
    const std::optional<uint64_t> v = sim::GetVarint(bytes_, &pos_);
    if (!v) return Fail<uint64_t>();
    return *v;
  }
  int64_t Zigzag() {
    const std::optional<int64_t> v = GetZigzag(bytes_, &pos_);
    if (!v) return Fail<int64_t>();
    return *v;
  }
  double F64() {
    const std::optional<double> v = GetF64(bytes_, &pos_);
    if (!v) return Fail<double>();
    return *v;
  }
  uint64_t U64() {
    if (pos_ + 8 > bytes_.size()) return Fail<uint64_t>();
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<uint64_t>(bytes_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return x;
  }
  uint8_t Byte() {
    if (pos_ >= bytes_.size()) return Fail<uint8_t>();
    return bytes_[pos_++];
  }
  bool Bool() {
    const uint8_t b = Byte();
    if (b > 1) return Fail<bool>();
    return b == 1;
  }
  sim::Payload Msg() {
    const uint64_t len = Varint();
    if (!ok_ || pos_ + len > bytes_.size()) return Fail<sim::Payload>();
    const std::vector<uint8_t> wire(
        bytes_.begin() + static_cast<ptrdiff_t>(pos_),
        bytes_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    const std::optional<sim::Payload> msg = sim::DecodePayload(wire);
    if (!msg) return Fail<sim::Payload>();
    return *msg;
  }
  // Bounds element counts so a corrupted count can't drive a huge
  // allocation before the CRC... (the CRC already gates entry, but the
  // decoder is also exercised directly by the fuzz test).
  size_t Count() {
    const uint64_t n = Varint();
    if (n > (1u << 26)) return Fail<size_t>();
    return static_cast<size_t>(n);
  }

  MergeableSample Sample() {
    MergeableSample s;
    s.kind = static_cast<SampleKind>(Byte());
    s.target_size = static_cast<size_t>(Varint());
    s.state_version = Varint();
    s.entries.resize(Count());
    if (!ok_) return s;
    for (KeyedItem& e : s.entries) {
      e.item.id = Varint();
      e.item.weight = F64();
      e.key = F64();
    }
    s.withheld.resize(Count());
    if (!ok_) return s;
    for (LeveledKeyedItem& w : s.withheld) {
      w.entry.item.id = Varint();
      w.entry.item.weight = F64();
      w.entry.key = F64();
      w.level = static_cast<int>(Zigzag());
    }
    s.level_counts.resize(Count());
    if (!ok_) return s;
    for (LevelCount& lc : s.level_counts) {
      lc.level = static_cast<int>(Zigzag());
      lc.count = Varint();
    }
    s.slots.resize(Count());
    if (!ok_) return s;
    for (MergeableSample::Slot& slot : s.slots) {
      slot.filled = Bool();
      slot.key = F64();
      slot.item.id = Varint();
      slot.item.weight = F64();
    }
    s.scalar = F64();
    return s;
  }

  sim::MessageStats MessageStats() {
    sim::MessageStats m;
    m.site_to_coord = Varint();
    m.coord_to_site = Varint();
    m.broadcast_events = Varint();
    m.words = Varint();
    for (uint64_t& v : m.by_type) v = Varint();
    return m;
  }

 private:
  template <typename T>
  T Fail() {
    ok_ = false;
    return T{};
  }

  const std::vector<uint8_t>& bytes_;
  size_t pos_;
  bool ok_ = true;
};

bool WriteFileAtomic(const std::string& path,
                     const std::vector<uint8_t>& bytes, std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    *error = "open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      *error = "write " + tmp + ": " + std::strerror(errno);
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    *error = "fsync " + tmp + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename to " + path + ": " + std::strerror(errno);
    return false;
  }
  // Make the rename itself durable.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::vector<uint8_t> bytes;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

// ckpt-<seq>.bin -> seq; nullopt for anything else.
std::optional<uint64_t> CheckpointSeqOf(const std::string& name) {
  constexpr const char* kPrefix = "ckpt-";
  constexpr const char* kSuffix = ".bin";
  if (name.rfind(kPrefix, 0) != 0) return std::nullopt;
  const size_t suffix_at = name.size() - std::strlen(kSuffix);
  if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix) ||
      name.compare(suffix_at, std::strlen(kSuffix), kSuffix) != 0) {
    return std::nullopt;
  }
  uint64_t seq = 0;
  for (size_t i = std::strlen(kPrefix); i < suffix_at; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

std::optional<uint64_t> WalSeqOf(const std::string& name) {
  constexpr const char* kPrefix = "wal-";
  constexpr const char* kSuffix = ".log";
  if (name.rfind(kPrefix, 0) != 0) return std::nullopt;
  const size_t suffix_at = name.size() - std::strlen(kSuffix);
  if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix) ||
      name.compare(suffix_at, std::strlen(kSuffix), kSuffix) != 0) {
    return std::nullopt;
  }
  uint64_t seq = 0;
  for (size_t i = std::strlen(kPrefix); i < suffix_at; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    names.emplace_back(entry->d_name);
  }
  ::closedir(d);
  return names;
}

}  // namespace

std::string CheckpointPath(const std::string& dir, uint64_t seq) {
  return dir + "/ckpt-" + std::to_string(seq) + ".bin";
}

std::string WalSegmentPath(const std::string& dir, uint64_t seq) {
  return dir + "/wal-" + std::to_string(seq) + ".log";
}

bool EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) return true;
  if (errno != EEXIST) return false;
  struct stat st;
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<uint8_t> EncodeCheckpoint(const ShardCheckpoint& c) {
  std::vector<uint8_t> body;
  sim::PutVarint(&body, c.checkpoint_seq);
  sim::PutVarint(&body, c.step);
  sim::PutVarint(&body, c.wal_records_logged);

  const query::ShardSnapshot& snap = c.snapshot;
  sim::PutVarint(&body, snap.publish_seq);
  sim::PutVarint(&body, snap.state_version);
  sim::PutVarint(&body, snap.steps);
  sim::PutVarint(&body, snap.session_epoch);
  body.push_back(snap.stale ? 1 : 0);
  PutSample(&body, snap.sample);
  PutF64(&body, snap.threshold);
  PutF64(&body, snap.l1_estimate);
  PutMessageStats(&body, snap.messages);

  const WsworCoordinator::State& coord = c.coordinator;
  for (uint64_t w : coord.rng) PutU64Le(&body, w);
  PutZigzag(&body, coord.announced_epoch);
  sim::PutVarint(&body, coord.early_received);
  sim::PutVarint(&body, coord.regular_received);
  sim::PutVarint(&body, coord.state_version);
  PutSample(&body, coord.summary);
  sim::PutVarint(&body, coord.saturated_levels.size());
  for (int level : coord.saturated_levels) PutZigzag(&body, level);

  const faults::CoordinatorSession::State& sess = c.session;
  sim::PutVarint(&body, sess.peers.size());
  for (const faults::CoordinatorSession::PeerState& peer : sess.peers) {
    sim::PutVarint(&body, peer.epoch);
    sim::PutVarint(&body, peer.expected_seq);
    sim::PutVarint(&body, peer.max_seen_seq);
    sim::PutVarint(&body, peer.last_nacked_expected);
  }
  PutU64Le(&body, sess.transcript_hash);
  sim::PutVarint(&body, sess.delivered);
  sim::PutVarint(&body, sess.duplicates_dropped);
  sim::PutVarint(&body, sess.stale_epoch_dropped);
  sim::PutVarint(&body, sess.gaps_detected);
  sim::PutVarint(&body, sess.nacks_sent);
  sim::PutVarint(&body, sess.crash_detections);
  sim::PutVarint(&body, sess.resyncs_sent);

  sim::PutVarint(&body, c.site_valid.size());
  body.insert(body.end(), c.site_valid.begin(), c.site_valid.end());

  sim::PutVarint(&body, c.site_sessions.size());
  for (const faults::SiteSession::State& s : c.site_sessions) {
    sim::PutVarint(&body, s.epoch);
    sim::PutVarint(&body, s.next_seq);
    sim::PutVarint(&body, s.unacked.size());
    for (const sim::Payload& msg : s.unacked) PutMsg(&body, msg);
    body.push_back(s.retransmit_pending ? 1 : 0);
    sim::PutVarint(&body, s.retransmit_from);
    sim::PutVarint(&body, s.items_seen);
    body.push_back(s.down ? 1 : 0);
    sim::PutVarint(&body, s.down_remaining);
    sim::PutVarint(&body, s.crashes);
    sim::PutVarint(&body, s.lost_unacked);
    sim::PutVarint(&body, s.items_lost);
    sim::PutVarint(&body, s.messages_dropped_down);
    sim::PutVarint(&body, s.retransmits_sent);
    sim::PutVarint(&body, s.pre_crash_counters.keys_decided);
    sim::PutVarint(&body, s.pre_crash_counters.key_bits_consumed);
    sim::PutVarint(&body, s.pre_crash_counters.skips_taken);
  }

  sim::PutVarint(&body, c.sites.size());
  for (const WsworSite::State& s : c.sites) {
    for (uint64_t w : s.rng) PutU64Le(&body, w);
    body.push_back(s.filter.has_pending ? 1 : 0);
    PutF64(&body, s.filter.pending);
    PutF64(&body, s.filter.value);
    sim::PutVarint(&body, s.filter.decisions);
    sim::PutVarint(&body, s.filter.accepts);
    sim::PutVarint(&body, s.filter.skips_taken);
    sim::PutVarint(&body, s.filter.draws);
    PutF64(&body, s.threshold);
    sim::PutVarint(&body, s.saturated.size());
    body.insert(body.end(), s.saturated.begin(), s.saturated.end());
  }

  const faults::FaultyTransport::State& t = c.transport;
  sim::PutVarint(&body, t.channels.size());
  for (const faults::FaultyTransport::ChannelState& ch : t.channels) {
    sim::PutVarint(&body, ch.next_index);
    sim::PutVarint(&body, ch.held.size());
    for (const auto& [release_at, msg] : ch.held) {
      sim::PutVarint(&body, release_at);
      PutMsg(&body, msg);
    }
  }
  sim::PutVarint(&body, t.forwarded);
  sim::PutVarint(&body, t.dropped);
  sim::PutVarint(&body, t.duplicated);
  sim::PutVarint(&body, t.delayed);
  body.push_back(t.enabled ? 1 : 0);

  sim::PutVarint(&body, c.kills_done);
  sim::PutVarint(&body, c.last_kill_step);

  std::vector<uint8_t> out(kCheckpointMagic, kCheckpointMagic + 4);
  out.push_back(kCheckpointFormatVersion);
  PutU32Le(&out, Crc32(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<ShardCheckpoint> DecodeCheckpoint(
    const std::vector<uint8_t>& bytes) {
  constexpr size_t kHeader = 4 + 1 + 4;
  if (bytes.size() < kHeader ||
      std::memcmp(bytes.data(), kCheckpointMagic, 4) != 0 ||
      bytes[4] != kCheckpointFormatVersion) {
    return std::nullopt;
  }
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<uint32_t>(bytes[5 + static_cast<size_t>(i)]) << (8 * i);
  }
  if (Crc32(bytes.data() + kHeader, bytes.size() - kHeader) != crc) {
    return std::nullopt;
  }

  Decoder d(bytes, kHeader);
  ShardCheckpoint c;
  c.checkpoint_seq = d.Varint();
  c.step = d.Varint();
  c.wal_records_logged = d.Varint();

  c.snapshot.publish_seq = d.Varint();
  c.snapshot.state_version = d.Varint();
  c.snapshot.steps = d.Varint();
  c.snapshot.session_epoch = d.Varint();
  c.snapshot.stale = d.Bool();
  c.snapshot.sample = d.Sample();
  c.snapshot.threshold = d.F64();
  c.snapshot.l1_estimate = d.F64();
  c.snapshot.messages = d.MessageStats();

  for (uint64_t& w : c.coordinator.rng) w = d.U64();
  c.coordinator.announced_epoch = static_cast<int>(d.Zigzag());
  c.coordinator.early_received = d.Varint();
  c.coordinator.regular_received = d.Varint();
  c.coordinator.state_version = d.Varint();
  c.coordinator.summary = d.Sample();
  c.coordinator.saturated_levels.resize(d.Count());
  if (!d.ok()) return std::nullopt;
  for (int& level : c.coordinator.saturated_levels) {
    level = static_cast<int>(d.Zigzag());
  }

  c.session.peers.resize(d.Count());
  if (!d.ok()) return std::nullopt;
  for (faults::CoordinatorSession::PeerState& peer : c.session.peers) {
    peer.epoch = static_cast<uint32_t>(d.Varint());
    peer.expected_seq = static_cast<uint32_t>(d.Varint());
    peer.max_seen_seq = static_cast<uint32_t>(d.Varint());
    peer.last_nacked_expected = static_cast<uint32_t>(d.Varint());
  }
  c.session.transcript_hash = d.U64();
  c.session.delivered = d.Varint();
  c.session.duplicates_dropped = d.Varint();
  c.session.stale_epoch_dropped = d.Varint();
  c.session.gaps_detected = d.Varint();
  c.session.nacks_sent = d.Varint();
  c.session.crash_detections = d.Varint();
  c.session.resyncs_sent = d.Varint();

  c.site_valid.resize(d.Count());
  if (!d.ok()) return std::nullopt;
  for (uint8_t& v : c.site_valid) v = d.Byte();

  c.site_sessions.resize(d.Count());
  if (!d.ok()) return std::nullopt;
  for (faults::SiteSession::State& s : c.site_sessions) {
    s.epoch = static_cast<uint32_t>(d.Varint());
    s.next_seq = static_cast<uint32_t>(d.Varint());
    s.unacked.resize(d.Count());
    if (!d.ok()) return std::nullopt;
    for (sim::Payload& msg : s.unacked) msg = d.Msg();
    s.retransmit_pending = d.Bool();
    s.retransmit_from = static_cast<uint32_t>(d.Varint());
    s.items_seen = d.Varint();
    s.down = d.Bool();
    s.down_remaining = d.Varint();
    s.crashes = d.Varint();
    s.lost_unacked = d.Varint();
    s.items_lost = d.Varint();
    s.messages_dropped_down = d.Varint();
    s.retransmits_sent = d.Varint();
    s.pre_crash_counters.keys_decided = d.Varint();
    s.pre_crash_counters.key_bits_consumed = d.Varint();
    s.pre_crash_counters.skips_taken = d.Varint();
  }

  c.sites.resize(d.Count());
  if (!d.ok()) return std::nullopt;
  for (WsworSite::State& s : c.sites) {
    for (uint64_t& w : s.rng) w = d.U64();
    s.filter.has_pending = d.Bool();
    s.filter.pending = d.F64();
    s.filter.value = d.F64();
    s.filter.decisions = d.Varint();
    s.filter.accepts = d.Varint();
    s.filter.skips_taken = d.Varint();
    s.filter.draws = d.Varint();
    s.threshold = d.F64();
    s.saturated.resize(d.Count());
    if (!d.ok()) return std::nullopt;
    for (uint8_t& v : s.saturated) v = d.Byte();
  }

  c.transport.channels.resize(d.Count());
  if (!d.ok()) return std::nullopt;
  for (faults::FaultyTransport::ChannelState& ch : c.transport.channels) {
    ch.next_index = d.Varint();
    ch.held.resize(d.Count());
    if (!d.ok()) return std::nullopt;
    for (auto& [release_at, msg] : ch.held) {
      release_at = d.Varint();
      msg = d.Msg();
    }
  }
  c.transport.forwarded = d.Varint();
  c.transport.dropped = d.Varint();
  c.transport.duplicated = d.Varint();
  c.transport.delayed = d.Varint();
  c.transport.enabled = d.Bool();

  c.kills_done = d.Varint();
  c.last_kill_step = d.Varint();

  if (!d.ok() || !d.AtEnd()) return std::nullopt;
  return c;
}

bool WriteCheckpointFile(const std::string& dir,
                         const ShardCheckpoint& checkpoint,
                         std::string* error) {
  const std::vector<uint8_t> bytes = EncodeCheckpoint(checkpoint);
  if (!WriteFileAtomic(CheckpointPath(dir, checkpoint.checkpoint_seq), bytes,
                       error)) {
    return false;
  }
  // Two generations retained: this one and its predecessor (the
  // fallback). Everything older — checkpoints and their WAL segments —
  // is superseded.
  for (const std::string& name : ListDir(dir)) {
    const std::optional<uint64_t> ckpt_seq = CheckpointSeqOf(name);
    const std::optional<uint64_t> wal_seq = WalSeqOf(name);
    const bool stale_ckpt =
        ckpt_seq && checkpoint.checkpoint_seq >= 1 &&
        *ckpt_seq < checkpoint.checkpoint_seq - 1;
    const bool stale_wal = wal_seq && checkpoint.checkpoint_seq >= 1 &&
                           *wal_seq < checkpoint.checkpoint_seq - 1;
    if (stale_ckpt || stale_wal) {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  return true;
}

std::optional<ShardCheckpoint> LoadLatestCheckpoint(const std::string& dir) {
  std::vector<uint64_t> seqs;
  for (const std::string& name : ListDir(dir)) {
    if (const std::optional<uint64_t> seq = CheckpointSeqOf(name)) {
      seqs.push_back(*seq);
    }
  }
  std::sort(seqs.rbegin(), seqs.rend());
  for (uint64_t seq : seqs) {
    const std::vector<uint8_t> bytes =
        ReadFileBytes(CheckpointPath(dir, seq));
    if (std::optional<ShardCheckpoint> c = DecodeCheckpoint(bytes)) {
      return c;
    }
    // Corrupt or torn: fall back to the previous generation.
  }
  return std::nullopt;
}

}  // namespace dwrs::durability
