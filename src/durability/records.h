// WAL record catalog. One frame payload (wal.h) is one encoded
// WalRecord. Two record families:
//
//   Replay inputs — what recovery feeds back through the real protocol
//   code:
//     kMessage        every arrival at the coordinator-session input,
//                     PRE-dedup (hellos, duplicates and gap arrivals
//                     included: they advance session state even when
//                     nothing reaches the inner coordinator), wrapped
//                     around sim::codec's wire encoding.
//     kStepMark       a stream step quiesced; recovery replays through
//                     the LAST committed mark (the durable step) and
//                     discards the partial step behind it.
//     kCheckpointMark a checkpoint of the given sequence was captured
//                     here (audit of the rotation lifecycle).
//
//   Decision audit — coordinator outcomes recorded so a recovery can
//   CROSS-CHECK that replay regenerated the same history, rather than
//   trust it did:
//     kThresholdBump  the coordinator announced a higher epoch
//                     threshold.
//     kEpochChange    the announced epoch index advanced.
//     kSampleDelta    sample membership changed: `added` entered S,
//                     optionally evicting `evicted_id`.
//
// Integers are LEB128 varints (sim::PutVarint), doubles raw IEEE 754
// little-endian, matching the message codec's conventions. Golden byte
// vectors for every type are pinned in tests/codec_test.cc — the
// on-disk format is a compatibility surface.

#ifndef DWRS_DURABILITY_RECORDS_H_
#define DWRS_DURABILITY_RECORDS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sampling/keyed_item.h"
#include "sim/message.h"

namespace dwrs::durability {

enum class WalRecordType : uint8_t {
  kMessage = 1,
  kThresholdBump = 2,
  kEpochChange = 3,
  kSampleDelta = 4,
  kStepMark = 5,
  kCheckpointMark = 6,
};

const char* WalRecordTypeName(WalRecordType type);

// Flattened tagged union; only the fields of the active type are
// meaningful (the encoder serializes exactly those).
struct WalRecord {
  WalRecordType type = WalRecordType::kMessage;

  // kMessage: sending site + the wire message as received.
  int site = 0;
  sim::Payload msg;

  // kThresholdBump.
  double threshold = 0.0;
  // kEpochChange.
  int64_t epoch = 0;

  // kSampleDelta.
  KeyedItem added;
  bool evicted_valid = false;
  uint64_t evicted_id = 0;

  // kStepMark: the 1-based quiesced stream step.
  // kCheckpointMark: the checkpoint sequence.
  uint64_t step = 0;
};

std::vector<uint8_t> EncodeWalRecord(const WalRecord& record);

// nullopt on any malformed input (unknown type, truncation, trailing
// bytes, inner payload decode failure).
std::optional<WalRecord> DecodeWalRecord(const std::vector<uint8_t>& bytes);

// Shared primitives with the checkpoint codec (checkpoint.cc).
void PutF64(std::vector<uint8_t>* out, double x);
std::optional<double> GetF64(const std::vector<uint8_t>& in, size_t* pos);
void PutZigzag(std::vector<uint8_t>* out, int64_t x);
std::optional<int64_t> GetZigzag(const std::vector<uint8_t>& in, size_t* pos);

}  // namespace dwrs::durability

#endif  // DWRS_DURABILITY_RECORDS_H_
