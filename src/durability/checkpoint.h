// Durable checkpoints: a full serialization of one shard's protocol
// stack at a quiesce point, written atomically (temp + rename + fsync)
// and versioned by a monotone checkpoint sequence that doubles as the
// WAL segment generation (durable_shard.h describes the rotation
// lifecycle).
//
// The payload core is the shard's query::ShardSnapshot — the same value
// the live-query layer publishes — so "what a checkpoint restores" and
// "what a query would have answered" can never drift apart. Around it
// ride the states a snapshot deliberately omits: the coordinator's RNG
// words and saturation flags, the reliability sessions, the site
// filters, and the fault transport's channel counters (which keep a
// recovered run on the same fault-schedule coordinates).
//
// File format: "DCKP" magic | u8 version | u32 CRC32(body) | body. A
// CRC mismatch or truncation fails the load; LoadLatestCheckpoint then
// falls back to the previous generation (two generations are retained;
// older ones are pruned after a successful write).

#ifndef DWRS_DURABILITY_CHECKPOINT_H_
#define DWRS_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "core/site.h"
#include "faults/faulty_transport.h"
#include "faults/session.h"
#include "query/snapshot.h"

namespace dwrs::durability {

inline constexpr char kCheckpointMagic[4] = {'D', 'C', 'K', 'P'};
inline constexpr uint8_t kCheckpointFormatVersion = 1;

struct ShardCheckpoint {
  // Monotone generation; WAL segment wal-<checkpoint_seq>.log holds the
  // records after this capture.
  uint64_t checkpoint_seq = 0;
  // Stream step at capture (1-based prefix length; the feeder resumes
  // at step + 1).
  uint64_t step = 0;
  // WAL records logged before the capture (accounting continuity).
  uint64_t wal_records_logged = 0;

  // The query-layer view at capture — checkpoint payload core.
  query::ShardSnapshot snapshot;

  // Protocol + reliability state the snapshot does not carry.
  WsworCoordinator::State coordinator;
  faults::CoordinatorSession::State session;
  // Per site: whether a live endpoint existed (a site inside a
  // crash-down window has none), its session state, and — when valid —
  // its protocol state.
  std::vector<uint8_t> site_valid;
  std::vector<faults::SiteSession::State> site_sessions;
  std::vector<WsworSite::State> sites;
  faults::FaultyTransport::State transport;

  // Kill-harness bookkeeping, so a recovered run never re-fires a kill
  // it already took on a re-fed step.
  uint64_t kills_done = 0;
  uint64_t last_kill_step = 0;
};

std::vector<uint8_t> EncodeCheckpoint(const ShardCheckpoint& checkpoint);
std::optional<ShardCheckpoint> DecodeCheckpoint(
    const std::vector<uint8_t>& bytes);

// Serializes and writes `<dir>/ckpt-<seq>.bin` atomically, then prunes
// generations older than seq - 1. False (with *error) on I/O failure.
bool WriteCheckpointFile(const std::string& dir,
                         const ShardCheckpoint& checkpoint,
                         std::string* error);

// Loads the newest decodable checkpoint under `dir`, trying generations
// newest-first (a torn or corrupted newest file falls back to its
// predecessor). nullopt when none exists or none decodes.
std::optional<ShardCheckpoint> LoadLatestCheckpoint(const std::string& dir);

// The on-disk names the rotation lifecycle uses.
std::string CheckpointPath(const std::string& dir, uint64_t seq);
std::string WalSegmentPath(const std::string& dir, uint64_t seq);

// Creates `dir` (one level) if absent; false on failure.
bool EnsureDir(const std::string& dir);

}  // namespace dwrs::durability

#endif  // DWRS_DURABILITY_CHECKPOINT_H_
