#include "durability/durable_shard.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::durability {
namespace {

constexpr int kMaxReconcileRounds = 8;

uint64_t Bits(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

// Decision-record equality for the replay cross-check. Doubles compare
// by bit pattern: replay must REGENERATE the logged history, not merely
// approximate it.
bool DecisionEquals(const WalRecord& a, const WalRecord& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case WalRecordType::kThresholdBump:
      return Bits(a.threshold) == Bits(b.threshold);
    case WalRecordType::kEpochChange:
      return a.epoch == b.epoch;
    case WalRecordType::kSampleDelta:
      return a.added.item.id == b.added.item.id &&
             Bits(a.added.item.weight) == Bits(b.added.item.weight) &&
             Bits(a.added.key) == Bits(b.added.key) &&
             a.evicted_valid == b.evicted_valid &&
             (!a.evicted_valid || a.evicted_id == b.evicted_id);
    default:
      return false;
  }
}

void FoldInto(WalStats* total, const WalStats& s) {
  total->appends += s.appends;
  total->commits += s.commits;
  total->fsyncs += s.fsyncs;
  total->bytes_appended += s.bytes_appended;
  total->bytes_committed += s.bytes_committed;
}

}  // namespace

// --- DurableCoordinator -----------------------------------------------

DurableCoordinator::DurableCoordinator(faults::CoordinatorSession* session,
                                       WsworCoordinator* coordinator,
                                       bool log_decisions)
    : session_(session),
      coordinator_(coordinator),
      log_decisions_(log_decisions) {}

void DurableCoordinator::OnSampleDelta(
    const WsworCoordinator::SampleDelta& delta) {
  WalRecord record;
  record.type = WalRecordType::kSampleDelta;
  record.added = delta.added;
  record.evicted_valid = delta.evicted_valid;
  record.evicted_id = delta.evicted_id;
  pending_deltas_.push_back(record);
}

void DurableCoordinator::EmitDecision(const WalRecord& record) {
  if (capture_ != nullptr) {
    capture_->push_back(record);
  } else if (wal_ != nullptr) {
    wal_->Append(EncodeWalRecord(record));
    ++records_logged_;
  }
}

void DurableCoordinator::OnMessage(int site, const sim::Payload& msg) {
  // Write-ahead: the arrival is logged before any state it will mutate.
  // During replay (capture_ set) the arrival IS the log — no re-append.
  if (capture_ == nullptr && wal_ != nullptr) {
    WalRecord record;
    record.type = WalRecordType::kMessage;
    record.site = site;
    record.msg = msg;
    wal_->Append(EncodeWalRecord(record));
    ++records_logged_;
  }
  pending_deltas_.clear();
  const uint64_t threshold_before = Bits(coordinator_->Threshold());
  const int epoch_before = coordinator_->announced_epoch();
  session_->OnMessage(site, msg);
  if (!log_decisions_) return;
  // Decision audit, in a fixed order (deltas, threshold, epoch) so the
  // live log and the replay regeneration are comparable sequences.
  for (const WalRecord& delta : pending_deltas_) EmitDecision(delta);
  pending_deltas_.clear();
  if (Bits(coordinator_->Threshold()) != threshold_before) {
    WalRecord record;
    record.type = WalRecordType::kThresholdBump;
    record.threshold = coordinator_->Threshold();
    EmitDecision(record);
  }
  if (coordinator_->announced_epoch() != epoch_before) {
    WalRecord record;
    record.type = WalRecordType::kEpochChange;
    record.epoch = coordinator_->announced_epoch();
    EmitDecision(record);
  }
}

// --- DurableWswor -----------------------------------------------------

DurableWswor::DurableWswor(const WsworConfig& config,
                           const faults::FaultConfig& fault_config,
                           faults::Backend backend,
                           const DurabilityOptions& options, int trace_shard)
    : config_(config),
      options_(options),
      backend_(backend),
      trace_shard_(trace_shard),
      schedule_(fault_config),
      num_sites_(config.num_sites) {
  DWRS_CHECK(!options_.dir.empty()) << " durability dir is required";
  DWRS_CHECK_GT(options_.commit_interval_steps, 0u);
  DWRS_CHECK_GT(options_.checkpoint_interval_steps, 0u);
  DWRS_CHECK(EnsureDir(options_.dir))
      << " cannot create durability dir " << options_.dir;
  Recover();
}

DurableWswor::~DurableWswor() { TearDownStack(/*abandon_pending=*/false); }

void DurableWswor::BuildStack() {
  if (backend_ == faults::Backend::kSim) {
    runtime_ = std::make_unique<sim::Runtime>(num_sites_);
  } else {
    engine::EngineConfig engine_config;
    engine_config.num_sites = num_sites_;
    engine_config.step_synchronous = true;
    engine_config.trace_shard = trace_shard_;
    engine_ = std::make_unique<engine::Engine>(engine_config);
  }
  sim::Transport* inner =
      engine_ ? &engine_->transport()
              : static_cast<sim::Transport*>(&runtime_->network());
  faulty_ = std::make_unique<faults::FaultyTransport>(inner, &schedule_,
                                                      num_sites_);
  faulty_->set_trace_shard(trace_shard_);
  tracing_ =
      std::make_unique<obs::TracingTransport>(faulty_.get(), trace_shard_);
  // The coordinator stack sends through the switch so recovery can aim
  // replay-generated traffic at a capture sink; live it passes straight
  // through to the tracing transport, exactly the FaultyRun wiring.
  switchable_ = std::make_unique<SwitchableTransport>(tracing_.get());

  // Seed derivation mirrors FaultyRun (and the reliable facades): one
  // master draw per site in index order, then the coordinator's — a
  // durable run with no kills is bit-identical to a FaultyRun.
  Rng master(config_.seed);
  std::vector<uint64_t> site_seeds;
  site_seeds.reserve(static_cast<size_t>(num_sites_));
  for (int i = 0; i < num_sites_; ++i) site_seeds.push_back(master.NextU64());
  coordinator_ = std::make_unique<WsworCoordinator>(
      config_, switchable_.get(), master.NextU64());
  coordinator_->set_trace_shard(trace_shard_);
  coordinator_session_ = std::make_unique<faults::CoordinatorSession>(
      num_sites_, coordinator_.get(), switchable_.get(),
      [this] { return coordinator_->ResyncMessages(); });
  coordinator_session_->set_trace_shard(trace_shard_);
  durable_coordinator_ = std::make_unique<DurableCoordinator>(
      coordinator_session_.get(), coordinator_.get(), options_.log_decisions);
  if (options_.log_decisions) {
    coordinator_->set_sample_delta_hook(
        [dc = durable_coordinator_.get()](
            const WsworCoordinator::SampleDelta& delta) {
          dc->OnSampleDelta(delta);
        });
  }

  const WsworConfig config = config_;
  for (int i = 0; i < num_sites_; ++i) {
    site_sessions_.push_back(std::make_unique<faults::SiteSession>(
        i, tracing_.get(), &schedule_,
        [config, i, seed = site_seeds[static_cast<size_t>(i)]](
            sim::Transport* upper, uint32_t epoch) {
          return std::make_unique<WsworSite>(config, i, upper,
                                             faults::RestartSeed(seed, epoch));
        }));
    site_sessions_.back()->set_trace_shard(trace_shard_);
    if (runtime_) {
      runtime_->AttachSite(i, site_sessions_.back().get());
    } else {
      engine_->AttachSite(i, site_sessions_.back().get());
    }
  }
  if (runtime_) {
    runtime_->AttachCoordinator(durable_coordinator_.get());
  } else {
    engine_->AttachCoordinator(durable_coordinator_.get());
  }
}

void DurableWswor::TearDownStack(bool abandon_pending) {
  if (wal_) {
    if (abandon_pending) wal_->AbandonPending();
    wal_->Close();
    FoldInto(&closed_segment_stats_, wal_->stats());
    wal_.reset();
  }
  // The engine joins its workers before any endpoint dies (teardown
  // contract in engine/engine.h).
  if (engine_) engine_->Shutdown();
  if (durable_coordinator_) {
    wal_records_logged_ += durable_coordinator_->records_logged();
  }
  site_sessions_.clear();
  durable_coordinator_.reset();
  coordinator_session_.reset();
  coordinator_.reset();
  switchable_.reset();
  tracing_.reset();
  faulty_.reset();
  engine_.reset();
  runtime_.reset();
}

void DurableWswor::OpenSegment(uint64_t seq, bool truncate) {
  WalWriterOptions wal_options;
  wal_options.fsync_commits = options_.fsync_commits;
  wal_options.group_commit = options_.background_flush;
  wal_options.flush_interval_us = options_.flush_interval_us;
  wal_options.flush_bytes = options_.flush_bytes;
  wal_ = std::make_unique<WalWriter>(WalSegmentPath(options_.dir, seq),
                                     wal_options, truncate);
  DWRS_CHECK(wal_->ok()) << " wal open failed: " << wal_->error();
  wal_seq_ = seq;
  durable_coordinator_->set_wal(wal_.get());
}

void DurableWswor::AppendHarnessRecord(const WalRecord& record) {
  wal_->Append(EncodeWalRecord(record));
  ++wal_records_logged_;
}

ShardCheckpoint DurableWswor::CaptureCheckpoint(uint64_t step) const {
  ShardCheckpoint checkpoint;
  checkpoint.step = step;
  checkpoint.wal_records_logged =
      wal_records_logged_ + durable_coordinator_->records_logged();

  // The query-layer view doubles as the checkpoint payload core.
  checkpoint.snapshot.publish_seq = checkpoint_seq_ + 1;
  checkpoint.snapshot.state_version = coordinator_->StateVersion();
  checkpoint.snapshot.steps = step;
  checkpoint.snapshot.session_epoch = coordinator_session_->MaxSiteEpoch();
  checkpoint.snapshot.stale = !coordinator_session_->AllGapsResolved();
  checkpoint.snapshot.sample = coordinator_->ShardSample();
  checkpoint.snapshot.threshold = coordinator_->Threshold();
  if (runtime_) checkpoint.snapshot.messages = runtime_->stats();

  checkpoint.coordinator = coordinator_->SaveState();
  checkpoint.session = coordinator_session_->SaveState();
  checkpoint.site_valid.resize(static_cast<size_t>(num_sites_), 0);
  for (int i = 0; i < num_sites_; ++i) {
    faults::SiteSession* session = site_sessions_[static_cast<size_t>(i)].get();
    checkpoint.site_sessions.push_back(session->SaveState());
    if (session->endpoint() != nullptr) {
      checkpoint.site_valid[static_cast<size_t>(i)] = 1;
      checkpoint.sites.push_back(
          static_cast<WsworSite*>(session->endpoint())->SaveState());
    }
  }
  checkpoint.transport = faulty_->SaveState();
  checkpoint.kills_done = kills_done_;
  checkpoint.last_kill_step = last_kill_step_;
  return checkpoint;
}

void DurableWswor::RestoreFromCheckpoint(const ShardCheckpoint& c) {
  DWRS_CHECK_EQ(c.site_sessions.size(), static_cast<size_t>(num_sites_))
      << " checkpoint site count mismatch";
  coordinator_->RestoreState(c.coordinator);
  coordinator_session_->RestoreState(c.session);
  size_t valid = 0;
  for (int i = 0; i < num_sites_; ++i) {
    faults::SiteSession* session = site_sessions_[static_cast<size_t>(i)].get();
    session->RestoreState(c.site_sessions[static_cast<size_t>(i)]);
    if (c.site_valid[static_cast<size_t>(i)]) {
      DWRS_CHECK(session->endpoint() != nullptr);
      DWRS_CHECK_LT(valid, c.sites.size());
      static_cast<WsworSite*>(session->endpoint())
          ->RestoreState(c.sites[valid++]);
    }
  }
  DWRS_CHECK_EQ(valid, c.sites.size());
  faulty_->RestoreState(c.transport);
}

void DurableWswor::WriteCheckpoint(uint64_t step) {
  ShardCheckpoint checkpoint = CaptureCheckpoint(step);
  checkpoint.checkpoint_seq = checkpoint_seq_ + 1;
  if (wal_) {
    // Close out the current segment: the checkpoint mark is its final
    // committed record, so a later reader can audit the rotation.
    WalRecord mark;
    mark.type = WalRecordType::kCheckpointMark;
    mark.step = checkpoint.checkpoint_seq;
    AppendHarnessRecord(mark);
    DWRS_CHECK(wal_->Commit()) << " wal commit failed: " << wal_->error();
    wal_->Close();
    FoldInto(&closed_segment_stats_, wal_->stats());
    wal_.reset();
  }
  std::string error;
  DWRS_CHECK(WriteCheckpointFile(options_.dir, checkpoint, &error))
      << " checkpoint write failed: " << error;
  checkpoint_seq_ = checkpoint.checkpoint_seq;
  ++checkpoints_written_;
  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kCheckpointWrite;
    event.a = checkpoint.checkpoint_seq;
    event.step = step;
    event.shard = static_cast<int16_t>(trace_shard_);
    obs::Emit(event);
  }
  OpenSegment(checkpoint_seq_, /*truncate=*/true);
}

bool DurableWswor::Recover() {
  last_recovery_ = RecoveryReport{};
  catching_up_ = false;
  catch_up_until_ = 0;
  const std::optional<ShardCheckpoint> loaded =
      LoadLatestCheckpoint(options_.dir);
  BuildStack();
  uint64_t scan_seq = 0;
  if (loaded) {
    RestoreFromCheckpoint(*loaded);
    checkpoint_seq_ = loaded->checkpoint_seq;
    feed_step_ = loaded->step;
    wal_records_logged_ = loaded->wal_records_logged;
    kills_done_ = std::max(kills_done_, loaded->kills_done);
    last_kill_step_ = std::max(last_kill_step_, loaded->last_kill_step);
    scan_seq = loaded->checkpoint_seq;
    last_recovery_.checkpoint_seq = loaded->checkpoint_seq;
    last_recovery_.checkpoint_step = loaded->step;
  } else {
    checkpoint_seq_ = 0;
    feed_step_ = 0;
  }

  // The WAL tail: the loaded generation's segment, plus any later
  // segments (present when the newest checkpoint was torn and the load
  // fell back a generation — the later segments' records continue the
  // arrival stream seamlessly, because rotation happens at capture).
  std::vector<WalRecord> records;
  uint64_t last_seq = scan_seq;
  bool stop_scan = false;
  for (uint64_t seq = scan_seq; !stop_scan; ++seq) {
    const WalReadResult segment =
        ReadWalFile(WalSegmentPath(options_.dir, seq));
    if (!segment.ok) break;
    last_seq = seq;
    if (segment.truncated_tail) last_recovery_.wal_tail_truncated = true;
    for (const std::vector<uint8_t>& payload : segment.payloads) {
      const std::optional<WalRecord> record = DecodeWalRecord(payload);
      if (!record) {
        // CRC-valid but undecodable: format corruption, not a torn
        // write. Stop here and flag — never skip past it.
        stop_scan = true;
        last_recovery_.consistent = false;
        break;
      }
      records.push_back(*record);
    }
    if (segment.truncated_tail && !stop_scan) {
      // A torn tail ends the trustworthy stream. In the FINAL segment
      // that is the expected mid-write kill signature; records in any
      // LATER segment would sit past a gap — never replay across one.
      stop_scan = true;
      if (ReadWalFile(WalSegmentPath(options_.dir, seq + 1)).ok) {
        last_recovery_.consistent = false;
      }
    }
  }
  last_recovery_.recovered = loaded.has_value() || !records.empty();

  // Replay through the LAST committed step mark: everything behind it
  // belongs to a step that never durably quiesced and is regenerated by
  // the re-feed.
  size_t cut = 0;
  uint64_t durable_step = feed_step_;
  for (size_t i = records.size(); i-- > 0;) {
    if (records[i].type == WalRecordType::kStepMark) {
      cut = i + 1;
      durable_step = records[i].step;
      break;
    }
  }
  last_recovery_.durable_step = durable_step;
  last_recovery_.wal_records_truncated =
      static_cast<uint64_t>(records.size() - cut);

  // Replay the arrival stream through the real session code, sends
  // aimed at a capture sink; decision records regenerate into
  // `regenerated` for the cross-check below.
  CaptureTransport sink;
  std::vector<WalRecord> regenerated;
  switchable_->set_target(&sink);
  durable_coordinator_->set_replay_capture(&regenerated);
  std::vector<const WalRecord*> logged_decisions;
  catch_up_broadcasts_.clear();
  for (size_t i = 0; i < cut; ++i) {
    const WalRecord& record = records[i];
    switch (record.type) {
      case WalRecordType::kMessage:
        durable_coordinator_->OnMessage(record.site, record.msg);
        break;
      case WalRecordType::kThresholdBump:
      case WalRecordType::kEpochChange:
      case WalRecordType::kSampleDelta:
        logged_decisions.push_back(&record);
        break;
      case WalRecordType::kStepMark: {
        // Broadcasts the replayed arrivals of this step regenerated;
        // the catch-up re-feed re-injects them at the same boundary.
        std::vector<sim::Payload> broadcasts = sink.TakeBroadcasts();
        if (!broadcasts.empty()) {
          catch_up_broadcasts_.emplace_back(record.step,
                                            std::move(broadcasts));
        }
        break;
      }
      case WalRecordType::kCheckpointMark:
        break;
    }
  }
  durable_coordinator_->set_replay_capture(nullptr);
  switchable_->set_target(tracing_.get());
  last_recovery_.wal_records_replayed = static_cast<uint64_t>(cut);
  wal_records_replayed_ += static_cast<uint64_t>(cut);

  if (options_.log_decisions) {
    if (regenerated.size() != logged_decisions.size()) {
      last_recovery_.consistent = false;
    } else {
      for (size_t i = 0; i < regenerated.size(); ++i) {
        if (!DecisionEquals(regenerated[i], *logged_decisions[i])) {
          last_recovery_.consistent = false;
          break;
        }
      }
    }
  }
  recovery_consistent_ = recovery_consistent_ && last_recovery_.consistent;

  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kRecoveryReplay;
    event.a = static_cast<uint64_t>(cut);
    event.step = durable_step;
    event.shard = static_cast<int16_t>(trace_shard_);
    obs::Emit(event);
  }

  if (!last_recovery_.recovered) {
    // Fresh directory: genesis segment, no checkpoint yet.
    OpenSegment(0, /*truncate=*/true);
    return false;
  }
  ++recoveries_;
  checkpoint_seq_ = std::max(checkpoint_seq_, last_seq);
  if (durable_step > feed_step_) {
    // Sites sit at B while session + coordinator sit at D: defer all
    // durable writes until the feeder has re-run (B, D] and the whole
    // stack is a pure D-state. Until then the old segments stay
    // authoritative — a second kill inside the window replays them
    // idempotently.
    catching_up_ = true;
    catch_up_until_ = durable_step;
  } else {
    // Recovery checkpoint: supersede every replayed segment and rotate
    // to a fresh one, so recovery never appends to an old segment file.
    catch_up_broadcasts_.clear();
    WriteCheckpoint(feed_step_);
  }
  return true;
}

void DurableWswor::Run(const Workload& workload,
                       const std::function<void(uint64_t)>& on_step) {
  DWRS_CHECK_EQ(workload.num_sites(), num_sites_);
  uint64_t step = feed_step_;
  size_t broadcast_cursor = 0;  // next pending catch-up broadcast batch
  while (step < workload.size()) {
    const WorkloadEvent& event = workload.event(step);
    if (runtime_) {
      runtime_->Deliver(event);
    } else {
      engine_->Push(event.site, event.item);
      engine_->Flush();
    }
    ++step;
    feed_step_ = step;
    if (catching_up_) {
      // Catch-up window (B, D]: logging is off — the old segments
      // already cover these steps. The session duplicate-drops (and
      // re-acks) the re-sent arrivals; what it cannot regenerate are
      // the coordinator-initiated broadcasts, so re-inject the captured
      // ones at their original step boundary.
      while (broadcast_cursor < catch_up_broadcasts_.size() &&
             catch_up_broadcasts_[broadcast_cursor].first < step) {
        ++broadcast_cursor;
      }
      if (broadcast_cursor < catch_up_broadcasts_.size() &&
          catch_up_broadcasts_[broadcast_cursor].first == step) {
        for (const sim::Payload& msg :
             catch_up_broadcasts_[broadcast_cursor].second) {
          switchable_->Broadcast(msg);
        }
        ++broadcast_cursor;
        FlushBackend();
      }
      if (step == catch_up_until_) {
        // The whole stack is a pure D-state again: make it durable and
        // resume normal logging on a fresh segment.
        catching_up_ = false;
        catch_up_broadcasts_.clear();
        broadcast_cursor = 0;
        WriteCheckpoint(step);
      }
    } else {
      // Quiesce point: the step's message exchange is complete on both
      // backends, so the mark is ordered after every record it covers.
      WalRecord mark;
      mark.type = WalRecordType::kStepMark;
      mark.step = step;
      AppendHarnessRecord(mark);
      if (step % options_.commit_interval_steps == 0) {
        DWRS_CHECK(wal_->Commit()) << " wal commit failed: " << wal_->error();
      }
      if (step % options_.checkpoint_interval_steps == 0) {
        WriteCheckpoint(step);
      }
    }
    if (on_step) on_step(step);
    if (schedule_.ProcessKillsAt(step) &&
        kills_done_ < static_cast<uint64_t>(
                          std::max(0, schedule_.config().max_process_kills)) &&
        step > last_kill_step_) {
      ++kills_done_;
      last_kill_step_ = step;
      // kill -9: every volatile byte dies — un-committed WAL buffers
      // included — then the process image is rebuilt from disk.
      TearDownStack(/*abandon_pending=*/true);
      Recover();
      step = feed_step_;
      broadcast_cursor = 0;
    }
  }
  DWRS_CHECK(!catching_up_)
      << " workload ended inside the recovery catch-up window (the re-fed"
         " stream must cover every durably logged step)";
  Reconcile();
  // Final checkpoint (post-reconcile): commits the reconcile-round
  // records and leaves the directory resumable at end of stream.
  WriteCheckpoint(feed_step_);
}

void DurableWswor::FlushBackend() {
  if (runtime_) {
    runtime_->Flush();
  } else {
    engine_->Flush();
  }
}

void DurableWswor::Reconcile() {
  faulty_->set_enabled(false);
  for (int round = 0; round < kMaxReconcileRounds; ++round) {
    faulty_->FlushDelayed();
    FlushBackend();
    bool drained = true;
    for (const auto& session : site_sessions_) {
      if (session->unacked_size() != 0) drained = false;
    }
    if (drained) break;
    for (const auto& session : site_sessions_) {
      session->RetransmitAllUnacked();
    }
    FlushBackend();
  }
  for (const auto& session : site_sessions_) {
    DWRS_CHECK_EQ(session->unacked_size(), 0u)
        << " reconcile failed to drain site retransmit buffers";
  }
}

faults::RunReport DurableWswor::report() const {
  faults::RunReport out;
  out.transcript_hash = coordinator_session_->transcript_hash();
  out.delivered = coordinator_session_->delivered();
  out.crash_detections = coordinator_session_->crash_detections();
  out.resyncs_sent = coordinator_session_->resyncs_sent();
  out.duplicates_dropped = coordinator_session_->duplicates_dropped();
  out.gaps_detected = coordinator_session_->gaps_detected();
  out.nacks_sent = coordinator_session_->nacks_sent();
  out.stale_epoch_dropped = coordinator_session_->stale_epoch_dropped();
  for (const auto& session : site_sessions_) {
    out.crashes += session->crashes();
    out.lost_unacked += session->lost_unacked();
    out.items_lost += session->items_lost();
    out.retransmits_sent += session->retransmits_sent();
    out.messages_dropped_down += session->messages_dropped_down();
  }
  const faults::FaultCounters& fc = faulty_->counters();
  out.faults_forwarded = fc.forwarded.load(std::memory_order_relaxed);
  out.faults_dropped = fc.dropped.load(std::memory_order_relaxed);
  out.faults_duplicated = fc.duplicated.load(std::memory_order_relaxed);
  out.faults_delayed = fc.delayed.load(std::memory_order_relaxed);
  out.process_kills = kills_done_;
  out.recoveries = recoveries_;
  out.wal_records_logged =
      wal_records_logged_ + durable_coordinator_->records_logged();
  out.wal_records_replayed = wal_records_replayed_;
  out.checkpoints_written = checkpoints_written_;
  out.recovery_consistent = recovery_consistent_;
  out.clean = out.lost_unacked == 0 && recovery_consistent_ &&
              coordinator_session_->AllGapsResolved();
  return out;
}

ProbeState DurableWswor::Probe() const {
  ProbeState probe;
  probe.state_version = coordinator_->StateVersion();
  probe.delivered = coordinator_session_->delivered();
  probe.transcript_hash = coordinator_session_->transcript_hash();
  probe.threshold_bits = Bits(coordinator_->Threshold());
  for (const KeyedItem& ki : coordinator_->Sample()) {
    probe.sample.emplace_back(ki.item.id, Bits(ki.key));
  }
  return probe;
}

std::vector<uint64_t> DurableWswor::SampleIds() const {
  std::vector<uint64_t> ids;
  for (const KeyedItem& ki : coordinator_->Sample()) ids.push_back(ki.item.id);
  return ids;
}

WalStats DurableWswor::wal_stats() const {
  WalStats total = closed_segment_stats_;
  if (wal_) FoldInto(&total, wal_->stats());
  return total;
}

// --- ShardedDurableWswor ----------------------------------------------

ShardedDurableWswor::ShardedDurableWswor(
    const WsworConfig& config,
    const std::vector<faults::FaultConfig>& shard_faults,
    faults::Backend backend, const DurabilityOptions& options)
    : topology_(config.num_sites, static_cast<int>(shard_faults.size())) {
  DWRS_CHECK(!options.dir.empty()) << " durability dir is required";
  DWRS_CHECK(EnsureDir(options.dir))
      << " cannot create durability dir " << options.dir;
  shards_.reserve(shard_faults.size());
  for (int shard = 0; shard < topology_.num_shards(); ++shard) {
    WsworConfig shard_config = config;
    shard_config.num_sites = topology_.SiteCount(shard);
    shard_config.seed = ShardSeed(config.seed, shard);
    DurabilityOptions shard_options = options;
    shard_options.dir = options.dir + "/shard-" + std::to_string(shard);
    shards_.push_back(std::make_unique<DurableWswor>(
        shard_config, shard_faults[static_cast<size_t>(shard)], backend,
        shard_options, /*trace_shard=*/shard));
  }
}

void ShardedDurableWswor::Run(const Workload& workload) {
  const std::vector<Workload> splits = SplitByShard(workload, topology_);
  for (int shard = 0; shard < topology_.num_shards(); ++shard) {
    shards_[static_cast<size_t>(shard)]->Run(
        splits[static_cast<size_t>(shard)]);
  }
}

faults::RunReport ShardedDurableWswor::report() const {
  faults::RunReport out;
  out.transcript_hash = 1469598103934665603ull;  // FNV offset basis
  out.clean = true;
  for (const auto& shard : shards_) {
    const faults::RunReport r = shard->report();
    for (int b = 0; b < 64; b += 8) {
      out.transcript_hash ^= (r.transcript_hash >> b) & 0xffull;
      out.transcript_hash *= 1099511628211ull;  // FNV prime
    }
    out.delivered += r.delivered;
    out.crashes += r.crashes;
    out.crash_detections += r.crash_detections;
    out.resyncs_sent += r.resyncs_sent;
    out.lost_unacked += r.lost_unacked;
    out.items_lost += r.items_lost;
    out.duplicates_dropped += r.duplicates_dropped;
    out.gaps_detected += r.gaps_detected;
    out.nacks_sent += r.nacks_sent;
    out.retransmits_sent += r.retransmits_sent;
    out.stale_epoch_dropped += r.stale_epoch_dropped;
    out.messages_dropped_down += r.messages_dropped_down;
    out.faults_forwarded += r.faults_forwarded;
    out.faults_dropped += r.faults_dropped;
    out.faults_duplicated += r.faults_duplicated;
    out.faults_delayed += r.faults_delayed;
    out.process_kills += r.process_kills;
    out.recoveries += r.recoveries;
    out.wal_records_logged += r.wal_records_logged;
    out.wal_records_replayed += r.wal_records_replayed;
    out.checkpoints_written += r.checkpoints_written;
    out.recovery_consistent = out.recovery_consistent && r.recovery_consistent;
    out.clean = out.clean && r.clean;
  }
  return out;
}

MergeableSample ShardedDurableWswor::MergedSample() const {
  std::vector<MergeableSample> summaries;
  summaries.reserve(shards_.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    summaries.push_back(
        sim::CheckedShardSummary(&shards_[shard]->coordinator(), shard));
  }
  return MergeShardSamples(summaries);
}

std::vector<uint64_t> ShardedDurableWswor::MergedSampleIds() const {
  std::vector<uint64_t> ids;
  for (const KeyedItem& ki : MergedSample().TopEntries()) {
    ids.push_back(ki.item.id);
  }
  return ids;
}

}  // namespace dwrs::durability
