// Wire format for protocol messages. The paper counts messages in
// machine words (Section 2.1); this codec makes the claim concrete by
// serializing every Payload into bytes (LEB128 varints for the integer
// fields, raw IEEE754 for keys/weights) so benches can report real byte
// counts next to the word-accounting of MessageStats.

#ifndef DWRS_SIM_CODEC_H_
#define DWRS_SIM_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/message.h"

namespace dwrs::sim {

// Appends a LEB128 varint encoding of x.
void PutVarint(std::vector<uint8_t>* out, uint64_t x);

// Reads a varint at *pos; advances *pos. Returns nullopt on truncation
// or on a non-canonical >10-byte encoding.
std::optional<uint64_t> GetVarint(const std::vector<uint8_t>& in,
                                  size_t* pos);

// Serializes a payload:
//   varint type | varint a | flags byte | [varint seq] [varint epoch]
//   | [8B x] [8B y]
// where the flags byte records which of the optional fields are nonzero
// (most protocol messages carry at most one real value, and the seq/epoch
// reliability header only exists under the fault model). Bits:
//   1 = x present, 2 = y present, 4 = seq present, 8 = epoch present.
std::vector<uint8_t> EncodePayload(const Payload& msg);

// Inverse of EncodePayload; nullopt on malformed input. The `words`
// accounting field is reconstructed as ceil(bytes / 8).
std::optional<Payload> DecodePayload(const std::vector<uint8_t>& bytes);

// Convenience: encoded size in bytes.
size_t EncodedSize(const Payload& msg);

}  // namespace dwrs::sim

#endif  // DWRS_SIM_CODEC_H_
