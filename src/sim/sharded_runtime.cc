#include "sim/sharded_runtime.h"

namespace dwrs::sim {

ShardedRuntime::ShardedRuntime(int num_sites, int num_shards,
                               int delivery_delay, uint64_t jitter_seed)
    : topology_(num_sites, num_shards),
      coordinators_(static_cast<size_t>(num_shards), nullptr) {
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int shard = 0; shard < num_shards; ++shard) {
    // Shard 0 takes the caller's jitter seed raw — it IS the unsharded
    // instance when S = 1, preserving bit-identity with sim::Runtime
    // even under a jittered network; later shards remix by index so
    // jittered shards do not replay each other's delay sequence.
    shards_.push_back(std::make_unique<Runtime>(
        topology_.SiteCount(shard), delivery_delay,
        shard == 0 ? jitter_seed : ShardSeed(jitter_seed, shard)));
  }
}

void ShardedRuntime::AttachSite(int site, SiteNode* node) {
  const int shard = topology_.ShardOf(site);
  shards_[Index(shard)]->AttachSite(topology_.LocalOf(site), node);
}

void ShardedRuntime::AttachShardCoordinator(int shard, CoordinatorNode* node) {
  DWRS_CHECK(node != nullptr);
  shards_[Index(shard)]->AttachCoordinator(node);
  coordinators_[Index(shard)] = node;
}

void ShardedRuntime::Deliver(const WorkloadEvent& event) {
  const int shard = topology_.ShardOf(event.site);
  ++steps_;
  shards_[Index(shard)]->Deliver(
      WorkloadEvent{topology_.LocalOf(event.site), event.item});
}

void ShardedRuntime::Flush() {
  for (auto& shard : shards_) shard->Flush();
}

void ShardedRuntime::Run(const Workload& workload,
                         const std::function<void(uint64_t)>& on_step) {
  DWRS_CHECK_EQ(workload.num_sites(), topology_.num_sites());
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Deliver(workload.event(i));
    if (on_step) on_step(i + 1);
  }
}

MergeableSample ShardedRuntime::MergedSample() const {
  std::vector<MergeableSample> summaries;
  summaries.reserve(coordinators_.size());
  for (size_t shard = 0; shard < coordinators_.size(); ++shard) {
    summaries.push_back(CheckedShardSummary(coordinators_[shard], shard));
  }
  return MergeShardSamples(summaries);
}

MessageStats ShardedRuntime::AggregateStats() const {
  MessageStats total;
  for (const auto& shard : shards_) total += shard->stats();
  return total;
}

}  // namespace dwrs::sim
