// Protocol endpoint and transport interfaces shared by every execution
// backend. A protocol is written once against these three interfaces and
// then runs unmodified on either backend:
//
//   sim::Runtime    — single-threaded, step-synchronous simulated network
//                     (src/sim/network.h); exact, deterministic, counts
//                     messages per the paper's model.
//   engine::Engine  — multi-threaded execution engine (src/engine/); one
//                     thread per site, batched ingestion, MPSC channel to
//                     a coordinator thread.
//
// Endpoints are single-threaded by contract: the backend guarantees that
// OnItem / OnMessage / OnRound of one endpoint are never invoked
// concurrently, so endpoint implementations need no locking.

#ifndef DWRS_SIM_NODE_H_
#define DWRS_SIM_NODE_H_

#include <cstddef>
#include <cstdint>

#include "sampling/mergeable_sample.h"
#include "sim/message.h"
#include "stream/item.h"
#include "util/check.h"

namespace dwrs::sim {

// The send side of the coordinator model. Implemented by sim::Network
// (FIFO queues with delay/jitter) and engine::EngineTransport (bounded
// inter-thread channels). Endpoints depend only on this interface, which
// keeps the concurrent engine free of the simulated network and vice
// versa.
class Transport {
 public:
  virtual ~Transport() = default;

  // Site `site` sends one message up to the coordinator.
  virtual void SendToCoordinator(int site, const Payload& msg) = 0;
  // The coordinator sends one message down to site `site`.
  virtual void SendToSite(int site, const Payload& msg) = 0;
  // Coordinator -> every site; accounted as num_sites messages (as in the
  // paper's analysis) plus one broadcast event.
  virtual void Broadcast(const Payload& msg) = 0;

  // Monotone event clock: the number of stream events observed so far.
  // Exact under the step-synchronous simulator; under the concurrent
  // engine it is the ingestion count, which may run slightly ahead of the
  // observing endpoint (time-driven protocols such as sliding-window
  // expiry see an upper bound on the true step).
  virtual uint64_t step() const = 0;
};

// Hot-path instrumentation a site endpoint may export (Proposition 7
// accounting): how many threshold decisions it made, how many random
// bits those decisions consumed, and how many items the geometric-skip
// thinning rejected without touching the RNG at all. Endpoints without
// a randomized filter report zeros.
struct SiteHotPathCounters {
  uint64_t keys_decided = 0;
  uint64_t key_bits_consumed = 0;
  uint64_t skips_taken = 0;

  SiteHotPathCounters& operator+=(const SiteHotPathCounters& o) {
    keys_decided += o.keys_decided;
    key_bits_consumed += o.key_bits_consumed;
    skips_taken += o.skips_taken;
    return *this;
  }
};

// A protocol endpoint running at a site. Implementations receive their
// site index and a Transport for sending at construction time.
class SiteNode {
 public:
  virtual ~SiteNode() = default;
  virtual void OnItem(const Item& item) = 0;
  // Span ingestion: the batched hot path. Semantically identical to
  // calling OnItem per element — endpoints overriding this MUST keep the
  // transcript equal to the per-item path for every partition of the
  // stream into spans (hoist loop-invariant state, but make randomized
  // filters partition-invariant; see random/geometric_skip.h). The
  // backends guarantee OnMessage is never interleaved inside one OnItems
  // call, so endpoint state is loop-invariant within a span.
  virtual void OnItems(const Item* items, size_t n) {
    for (size_t i = 0; i < n; ++i) OnItem(items[i]);
  }
  virtual void OnMessage(const Payload& msg) = 0;
  // Invoked once per global round for sites registered via
  // Runtime::AttachTicker. In the paper's synchronous model every site
  // knows the round number at no message cost; protocols whose state
  // evolves with time alone (e.g. sliding-window expiry) hook this.
  // Backend note: only the step-synchronous simulator drives tickers.
  virtual void OnRound(uint64_t /*step*/) {}
  // Hot-path counters for stats surfacing (engine::Stats, bench JSON).
  virtual SiteHotPathCounters HotPathCounters() const { return {}; }
};

class CoordinatorNode {
 public:
  virtual ~CoordinatorNode() = default;
  virtual void OnMessage(int site, const Payload& msg) = 0;
  // Mergeable shard summary (sampling/mergeable_sample.h): the compact
  // state a root merge stage combines across shard coordinators into an
  // exact global sample. Legal at the same points as any other query
  // (quiesce points; see the threading contract in core/coordinator.h).
  // Coordinators without mergeable state report kEmpty, which merges as
  // the identity. Exports are versioned: implementations stamp
  // MergeableSample::state_version with StateVersion(), so a consumer
  // (the live query layer, src/query/) can tell two exports of the same
  // coordinator state apart from two different states.
  virtual MergeableSample ShardSample() const { return {}; }
  // Monotone state-change counter: advances by exactly one per processed
  // protocol message (the coordinator's state is a pure function of its
  // delivered-message prefix, so equal versions on one coordinator imply
  // equal state). 0 before the first message; coordinators without
  // version tracking report 0 forever.
  virtual uint64_t StateVersion() const { return 0; }
};

// The validated per-shard summary every sharded backend's root merge
// collects: the coordinator must be attached and must export mergeable
// state — a kEmpty summary would silently drop the shard's slice from
// the merged sample, an invisible wrong answer.
inline MergeableSample CheckedShardSummary(const CoordinatorNode* node,
                                           size_t shard) {
  DWRS_CHECK(node != nullptr) << " shard " << shard
                              << " coordinator not attached";
  MergeableSample summary = node->ShardSample();
  DWRS_CHECK(summary.kind != SampleKind::kEmpty)
      << " shard " << shard
      << "'s coordinator exports no mergeable summary (protocol not "
         "shardable?)";
  return summary;
}

}  // namespace dwrs::sim

#endif  // DWRS_SIM_NODE_H_
