#include "sim/runtime.h"

#include "util/check.h"

namespace dwrs::sim {

Runtime::Runtime(int num_sites, int delivery_delay, uint64_t jitter_seed)
    : network_(num_sites, delivery_delay, jitter_seed),
      sites_(static_cast<size_t>(num_sites), nullptr) {}

void Runtime::AttachSite(int site, SiteNode* node) {
  DWRS_CHECK(site >= 0 && site < num_sites());
  DWRS_CHECK(node != nullptr);
  sites_[static_cast<size_t>(site)] = node;
}

void Runtime::AttachCoordinator(CoordinatorNode* node) {
  DWRS_CHECK(node != nullptr);
  coordinator_ = node;
}

void Runtime::AttachTicker(SiteNode* node) {
  DWRS_CHECK(node != nullptr);
  tickers_.push_back(node);
}

void Runtime::Pump(bool force) {
  Network::Delivery d;
  uint64_t guard = 0;
  while (network_.PopDue(&d, force)) {
    if (d.to_coordinator) {
      DWRS_CHECK(coordinator_ != nullptr);
      coordinator_->OnMessage(d.site, d.msg);
    } else {
      SiteNode* site = sites_[static_cast<size_t>(d.site)];
      DWRS_CHECK(site != nullptr);
      site->OnMessage(d.msg);
    }
    // A protocol that replies to every delivery forever would livelock the
    // simulation; no protocol here exchanges more than O(k) messages per
    // item outside of bulk level-set saturation.
    DWRS_CHECK_LT(++guard, 100'000'000ull) << " message livelock";
  }
}

void Runtime::Deliver(const WorkloadEvent& event) {
  DWRS_CHECK(event.site >= 0 && event.site < num_sites());
  network_.AdvanceStep();
  for (SiteNode* ticker : tickers_) ticker->OnRound(network_.step());
  Pump(/*force=*/false);
  SiteNode* site = sites_[static_cast<size_t>(event.site)];
  DWRS_CHECK(site != nullptr);
  // Route through the span API (n = 1: the paper's one-item-per-step
  // model) so both backends exercise the same endpoint code path.
  site->OnItems(&event.item, 1);
  Pump(/*force=*/false);
}

void Runtime::Flush() { Pump(/*force=*/true); }

void Runtime::Run(const Workload& workload,
                  const std::function<void(uint64_t)>& on_step) {
  DWRS_CHECK_EQ(workload.num_sites(), num_sites());
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Deliver(workload.event(i));
    if (on_step) on_step(i + 1);
  }
}

}  // namespace dwrs::sim
