#include "sim/codec.h"

#include <cstring>

namespace dwrs::sim {
namespace {

constexpr uint8_t kHasX = 1;
constexpr uint8_t kHasY = 2;
constexpr uint8_t kHasSeq = 4;
constexpr uint8_t kHasEpoch = 8;

void PutDouble(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

std::optional<double> GetDouble(const std::vector<uint8_t>& in, size_t* pos) {
  if (*pos + 8 > in.size()) return std::nullopt;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(in[*pos + static_cast<size_t>(i)])
            << (8 * i);
  }
  *pos += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void PutVarint(std::vector<uint8_t>* out, uint64_t x) {
  while (x >= 0x80) {
    out->push_back(static_cast<uint8_t>(x) | 0x80);
    x >>= 7;
  }
  out->push_back(static_cast<uint8_t>(x));
}

std::optional<uint64_t> GetVarint(const std::vector<uint8_t>& in,
                                  size_t* pos) {
  uint64_t x = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (*pos >= in.size()) return std::nullopt;
    const uint8_t byte = in[(*pos)++];
    x |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return x;
    shift += 7;
  }
  return std::nullopt;  // over-long encoding
}

std::vector<uint8_t> EncodePayload(const Payload& msg) {
  std::vector<uint8_t> out;
  out.reserve(24);
  PutVarint(&out, msg.type);
  PutVarint(&out, msg.a);
  uint8_t flags = 0;
  if (msg.x != 0.0) flags |= kHasX;
  if (msg.y != 0.0) flags |= kHasY;
  if (msg.seq != 0) flags |= kHasSeq;
  if (msg.epoch != 0) flags |= kHasEpoch;
  out.push_back(flags);
  if (flags & kHasSeq) PutVarint(&out, msg.seq);
  if (flags & kHasEpoch) PutVarint(&out, msg.epoch);
  if (flags & kHasX) PutDouble(&out, msg.x);
  if (flags & kHasY) PutDouble(&out, msg.y);
  return out;
}

std::optional<Payload> DecodePayload(const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  Payload msg;
  const auto type = GetVarint(bytes, &pos);
  if (!type || *type > UINT32_MAX) return std::nullopt;
  msg.type = static_cast<uint32_t>(*type);
  const auto a = GetVarint(bytes, &pos);
  if (!a) return std::nullopt;
  msg.a = *a;
  if (pos >= bytes.size()) return std::nullopt;
  const uint8_t flags = bytes[pos++];
  if (flags & ~(kHasX | kHasY | kHasSeq | kHasEpoch)) return std::nullopt;
  if (flags & kHasSeq) {
    const auto seq = GetVarint(bytes, &pos);
    if (!seq || *seq == 0 || *seq > UINT32_MAX) return std::nullopt;
    msg.seq = static_cast<uint32_t>(*seq);
  }
  if (flags & kHasEpoch) {
    const auto epoch = GetVarint(bytes, &pos);
    if (!epoch || *epoch == 0 || *epoch > UINT32_MAX) return std::nullopt;
    msg.epoch = static_cast<uint32_t>(*epoch);
  }
  if (flags & kHasX) {
    const auto x = GetDouble(bytes, &pos);
    if (!x) return std::nullopt;
    msg.x = *x;
  }
  if (flags & kHasY) {
    const auto y = GetDouble(bytes, &pos);
    if (!y) return std::nullopt;
    msg.y = *y;
  }
  if (pos != bytes.size()) return std::nullopt;  // trailing garbage
  msg.words = static_cast<uint32_t>((bytes.size() + 7) / 8);
  return msg;
}

size_t EncodedSize(const Payload& msg) { return EncodePayload(msg).size(); }

}  // namespace dwrs::sim
