#include "sim/network.h"

#include "util/check.h"

namespace dwrs::sim {

Network::Network(int num_sites, int delivery_delay, uint64_t jitter_seed)
    : num_sites_(num_sites),
      delivery_delay_(delivery_delay),
      jitter_state_(jitter_seed),
      channel_floor_(2 * static_cast<size_t>(num_sites), 0),
      up_(num_sites),
      down_(num_sites) {
  DWRS_CHECK_GT(num_sites, 0);
  DWRS_CHECK_GE(delivery_delay, 0);
}

uint64_t Network::NextDueStep(size_t channel) {
  uint64_t delay = static_cast<uint64_t>(delivery_delay_);
  if (jitter_state_ != 0 && delivery_delay_ > 0) {
    // Cheap SplitMix64 draw; uniform in [0, delivery_delay].
    uint64_t z = (jitter_state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    delay = z % (static_cast<uint64_t>(delivery_delay_) + 1);
  }
  uint64_t due = step_ + delay;
  // FIFO per channel: never due earlier than the previous message.
  if (due < channel_floor_[channel]) due = channel_floor_[channel];
  channel_floor_[channel] = due;
  return due;
}

void Network::Account(const Payload& msg, bool upstream) {
  if (upstream) {
    ++stats_.site_to_coord;
  } else {
    ++stats_.coord_to_site;
  }
  stats_.words += msg.words;
  if (msg.type < stats_.by_type.size()) ++stats_.by_type[msg.type];
}

void Network::SendToCoordinator(int site, const Payload& msg) {
  DWRS_CHECK(site >= 0 && site < num_sites_);
  Account(msg, /*upstream=*/true);
  up_[site].push_back(
      Envelope{seq_++, NextDueStep(static_cast<size_t>(site)), msg});
  ++pending_;
}

void Network::SendToSite(int site, const Payload& msg) {
  DWRS_CHECK(site >= 0 && site < num_sites_);
  Account(msg, /*upstream=*/false);
  down_[site].push_back(Envelope{
      seq_++,
      NextDueStep(static_cast<size_t>(num_sites_) + static_cast<size_t>(site)),
      msg});
  ++pending_;
}

void Network::Broadcast(const Payload& msg) {
  ++stats_.broadcast_events;
  for (int i = 0; i < num_sites_; ++i) SendToSite(i, msg);
}

bool Network::PopDue(Delivery* out, bool force) {
  // Find the globally oldest due envelope across channels; FIFO order is
  // preserved per channel, and the global sequence number makes delivery
  // deterministic.
  const Envelope* best = nullptr;
  bool best_up = false;
  int best_site = -1;
  auto consider = [&](const std::deque<Envelope>& q, bool up, int site) {
    if (q.empty()) return;
    const Envelope& e = q.front();
    if (!force && e.due_step > step_) return;
    if (best == nullptr || e.seq < best->seq) {
      best = &e;
      best_up = up;
      best_site = site;
    }
  };
  for (int i = 0; i < num_sites_; ++i) {
    consider(up_[i], true, i);
    consider(down_[i], false, i);
  }
  if (best == nullptr) return false;
  out->to_coordinator = best_up;
  out->site = best_site;
  out->msg = best->msg;
  if (best_up) {
    up_[best_site].pop_front();
  } else {
    down_[best_site].pop_front();
  }
  --pending_;
  return true;
}

}  // namespace dwrs::sim
