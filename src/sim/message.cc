#include "sim/message.h"

#include <sstream>

namespace dwrs::sim {

std::string MessageStats::ToString() const {
  std::ostringstream out;
  out << "messages=" << total_messages() << " (up=" << site_to_coord
      << ", down=" << coord_to_site << ", broadcasts=" << broadcast_events
      << "), words=" << words;
  return out.str();
}

}  // namespace dwrs::sim
