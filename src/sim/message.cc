#include "sim/message.h"

#include "obs/metrics.h"
#include "obs/schema.h"

namespace dwrs::sim {

std::string MessageStats::ToString() const {
  obs::Snapshot snapshot;
  obs::AppendMessageStats(*this, /*prefix=*/"", &snapshot);
  return snapshot.ToText();
}

}  // namespace dwrs::sim
