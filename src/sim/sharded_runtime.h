// Step-synchronous sharded execution: S independent sim::Runtime
// instances, one per shard coordinator, plus the root merge stage that
// combines the shard coordinators' mergeable summaries into the exact
// global sample. The reference semantics for engine::ShardedEngine —
// a step-synchronous sharded engine run replays this bit for bit.
//
// Endpoints are constructed per shard with LOCAL site indices against
// shard_network(shard) and attached under their GLOBAL indices here;
// each shard runs an unmodified paper-protocol (site, coordinator) pair
// over its block of sites. Shards exchange nothing during the stream —
// only their compact summaries meet, at query time, in MergedSample().

#ifndef DWRS_SIM_SHARDED_RUNTIME_H_
#define DWRS_SIM_SHARDED_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/runtime.h"
#include "stream/sharding.h"
#include "stream/workload.h"

namespace dwrs::sim {

class ShardedRuntime {
 public:
  ShardedRuntime(int num_sites, int num_shards, int delivery_delay = 0,
                 uint64_t jitter_seed = 0);

  const ShardTopology& topology() const { return topology_; }
  int num_sites() const { return topology_.num_sites(); }
  int num_shards() const { return topology_.num_shards(); }

  // The shard's simulated network — the transport endpoints of shard
  // `shard` are constructed against (with local site indices).
  // shard_transport is the backend-agnostic spelling shared with
  // engine::ShardedEngine, so generic endpoint builders (e.g.
  // AttachShardedWswor) work against either backend.
  Network& shard_network(int shard) { return shards_[Index(shard)]->network(); }
  Transport& shard_transport(int shard) { return shard_network(shard); }
  Runtime& shard_runtime(int shard) { return *shards_[Index(shard)]; }
  const Runtime& shard_runtime(int shard) const {
    return *shards_[Index(shard)];
  }

  // Non-owning, global site index; the node must have been built against
  // shard_network(topology().ShardOf(site)) with local index
  // topology().LocalOf(site).
  void AttachSite(int site, SiteNode* node);
  void AttachShardCoordinator(int shard, CoordinatorNode* node);

  // Routes one global stream event to its shard's runtime.
  void Deliver(const WorkloadEvent& event);

  // Delivers all in-flight messages in every shard.
  void Flush();

  // Runs the full (global) workload; `on_step` is invoked after every
  // event with the 1-based global prefix length — query points, at which
  // MergedSample() answers over exactly that prefix.
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  // Root merge stage: the shard coordinators' summaries combined into
  // the exact global sample (sampling/mergeable_sample.h).
  MergeableSample MergedSample() const;

  // Traffic summed over shards; per-shard stats via shard_runtime(j).
  MessageStats AggregateStats() const;

  uint64_t steps() const { return steps_; }

 private:
  size_t Index(int shard) const {
    DWRS_CHECK(shard >= 0 && shard < topology_.num_shards());
    return static_cast<size_t>(shard);
  }

  ShardTopology topology_;
  std::vector<std::unique_ptr<Runtime>> shards_;
  std::vector<CoordinatorNode*> coordinators_;
  uint64_t steps_ = 0;
};

}  // namespace dwrs::sim

#endif  // DWRS_SIM_SHARDED_RUNTIME_H_
