// Message representation for the simulated coordinator model.
//
// Every protocol message in the paper carries at most an identifier, a
// weight, and a key — a constant number of machine words — so a single
// fixed-layout Payload covers all protocols. `words` is the accounted
// size; the simulation reports both message and word totals.

#ifndef DWRS_SIM_MESSAGE_H_
#define DWRS_SIM_MESSAGE_H_

#include <array>
#include <cstdint>
#include <string>

namespace dwrs::sim {

struct Payload {
  uint32_t type = 0;   // protocol-defined discriminator
  uint64_t a = 0;      // typically: item id or level index
  double x = 0.0;      // typically: weight or threshold
  double y = 0.0;      // typically: key
  uint32_t words = 2;  // accounted size in machine words

  // Reliability header, stamped by the session layer (src/faults/session.h)
  // when a protocol runs over an unreliable transport; zero on a reliable
  // network. `seq` is per-site monotone within an epoch (first message has
  // seq 1; 0 means unstamped); `epoch` increments each time the sending
  // site crashes and restarts. Not counted in `words`: the paper's
  // accounting measures protocol payload, and the header rides along only
  // under the fault model.
  uint32_t seq = 0;
  uint32_t epoch = 0;
};

// Aggregate traffic counters. A broadcast is accounted as k coordinator->
// site messages (as in the paper's analysis) plus one broadcast event.
struct MessageStats {
  uint64_t site_to_coord = 0;
  uint64_t coord_to_site = 0;
  uint64_t broadcast_events = 0;
  uint64_t words = 0;
  std::array<uint64_t, 32> by_type{};

  uint64_t total_messages() const { return site_to_coord + coord_to_site; }

  // Field-wise accumulation — the one definition the sharded backends'
  // aggregate views sum through.
  MessageStats& operator+=(const MessageStats& o) {
    site_to_coord += o.site_to_coord;
    coord_to_site += o.coord_to_site;
    broadcast_events += o.broadcast_events;
    words += o.words;
    for (size_t i = 0; i < by_type.size(); ++i) by_type[i] += o.by_type[i];
    return *this;
  }

  std::string ToString() const;
};

}  // namespace dwrs::sim

#endif  // DWRS_SIM_MESSAGE_H_
