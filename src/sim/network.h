// FIFO network between k sites and one coordinator, with message/word
// accounting and an optional delivery delay (in stream steps) used to
// exercise protocol robustness to in-flight messages.

#ifndef DWRS_SIM_NETWORK_H_
#define DWRS_SIM_NETWORK_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/message.h"
#include "sim/node.h"

namespace dwrs::sim {

class Network : public Transport {
 public:
  // delivery_delay = 0 means messages become deliverable immediately
  // (still FIFO); d > 0 delays each message by d stream steps. When
  // jitter_seed != 0, each message is additionally delayed by an
  // independent uniform amount in [0, delivery_delay] (FIFO per channel
  // is preserved by monotone due-step assignment).
  Network(int num_sites, int delivery_delay = 0, uint64_t jitter_seed = 0);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_sites() const { return num_sites_; }

  // --- senders (Transport) -------------------------------------------
  void SendToCoordinator(int site, const Payload& msg) override;
  void SendToSite(int site, const Payload& msg) override;

  // Due step for the next enqueue on `channel` (0..k-1 up, k..2k-1 down),
  // honouring both the configured delay/jitter and per-channel FIFO.
  uint64_t NextDueStep(size_t channel);
  // Accounted as num_sites() messages, delivered to every site.
  void Broadcast(const Payload& msg) override;

  // --- delivery (driven by Runtime) ----------------------------------
  void AdvanceStep() { ++step_; }
  uint64_t step() const override { return step_; }

  struct Delivery {
    bool to_coordinator = false;
    int site = 0;  // sender (if to_coordinator) or receiver (if to site)
    Payload msg;
  };

  // Pops the oldest due message across all channels (FIFO per channel,
  // globally ordered by enqueue sequence). Returns false when nothing is
  // due. If `force` is true, delay is ignored (used to flush).
  bool PopDue(Delivery* out, bool force = false);

  bool HasPending() const { return pending_ > 0; }

  const MessageStats& stats() const { return stats_; }

 private:
  struct Envelope {
    uint64_t seq = 0;
    uint64_t due_step = 0;
    Payload msg;
  };

  void Account(const Payload& msg, bool upstream);

  int num_sites_;
  int delivery_delay_;
  uint64_t jitter_state_ = 0;  // 0 = jitter disabled
  std::vector<uint64_t> channel_floor_;  // per channel: min next due step
  uint64_t step_ = 0;
  uint64_t seq_ = 0;
  uint64_t pending_ = 0;
  std::vector<std::deque<Envelope>> up_;    // site -> coordinator
  std::vector<std::deque<Envelope>> down_;  // coordinator -> site
  MessageStats stats_;
};

}  // namespace dwrs::sim

#endif  // DWRS_SIM_NETWORK_H_
