// Runtime drives a Workload through a (sites, coordinator) protocol pair
// over the simulated Network, exactly realizing the paper's model: per
// step one site observes one item; messages flow FIFO; the coordinator
// must be able to answer a sample query at every step.

#ifndef DWRS_SIM_RUNTIME_H_
#define DWRS_SIM_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/network.h"
#include "sim/node.h"
#include "stream/item.h"
#include "stream/workload.h"

namespace dwrs::sim {

class Runtime {
 public:
  Runtime(int num_sites, int delivery_delay = 0, uint64_t jitter_seed = 0);

  Network& network() { return network_; }
  const MessageStats& stats() const { return network_.stats(); }
  int num_sites() const { return network_.num_sites(); }

  // Non-owning; endpoints must outlive the runtime's use.
  void AttachSite(int site, SiteNode* node);
  void AttachCoordinator(CoordinatorNode* node);
  // Registers a site for per-round OnRound notifications (free in the
  // synchronous model; opt-in to keep other protocols' simulation fast).
  void AttachTicker(SiteNode* node);

  // Processes one stream event: advances the step clock, delivers all due
  // messages, hands the item to its site, then delivers whatever became
  // due (with zero delay this runs the exchange to quiescence).
  void Deliver(const WorkloadEvent& event);

  // Delivers all in-flight messages regardless of delay.
  void Flush();

  // Runs the full workload; if `on_step` is set it is invoked after every
  // event (1-based prefix length) — the hook used to query the
  // coordinator continuously.
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  uint64_t steps() const { return network_.step(); }

 private:
  void Pump(bool force);

  Network network_;
  std::vector<SiteNode*> sites_;
  std::vector<SiteNode*> tickers_;
  CoordinatorNode* coordinator_ = nullptr;
};

}  // namespace dwrs::sim

#endif  // DWRS_SIM_RUNTIME_H_
