#!/usr/bin/env python3
"""Flight-recorder trace validator (CI trace smoke job).

Checks a Chrome trace_event JSON produced by `dwrs_cli trace`:

  1. the file parses and is non-empty;
  2. every event type expected from a faulty sharded run is present
     (drop + dup + crash faults exercise the whole session layer);
  3. per-message causality holds: every in-order delivery at the
     coordinator session maps to a recorded send with the same
     (shard, site, epoch, seq) stamp, and no stamp is delivered twice;
  4. optionally (--report), event counts reconcile field for field with
     the fault-report snapshot the CLI printed on stdout: deliveries,
     duplicate drops, crashes/restarts, resyncs, nacks, retransmits and
     fault-layer verdicts each match their RunReport counter.

Usage:
    dwrs_cli trace --n=20000 --out=trace.json > report.json
    python3 tools/check_trace.py trace.json --report report.json
"""

import argparse
import json
import sys

# Event types a drop+dup+crash sharded run must produce. Types that need
# extra ingredients (fault_delay needs --delay, stalls need an
# oversubscribed engine, snapshot/query events need the live-query
# layer) are deliberately not required.
REQUIRED_TYPES = {
    "msg_send", "msg_recv", "msg_deliver", "dup_drop", "gap_nack",
    "threshold_bump", "fault_drop", "fault_dup", "crash", "restart",
    "retransmit", "epoch_bump", "resync_send", "item_span",
}

# trace event name -> fault-report snapshot field whose value must equal
# the event count (exact: the recorder emits one event per increment).
REPORT_COUNTS = {
    "msg_deliver": "faults/delivered",
    "dup_drop": "faults/duplicates_dropped",
    "crash": "faults/crashes",
    "restart": "faults/crashes",
    "epoch_bump": "faults/crash_detections",
    "resync_send": "faults/resyncs_sent",
    "gap_nack": "faults/nacks_sent",
    "retransmit": "faults/retransmits_sent",
    "stale_epoch_drop": "faults/stale_epoch_dropped",
    "fault_drop": "faults/faults_dropped",
    "fault_dup": "faults/faults_duplicated",
    "fault_delay": "faults/faults_delayed",
}


def fail(msg):
    print("FAIL " + msg, file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON from dwrs_cli trace")
    parser.add_argument("--report", default=None,
                        help="fault-report snapshot JSON (the CLI's stdout); "
                             "enables count reconciliation")
    args = parser.parse_args()

    with open(args.trace, "r", encoding="utf-8") as f:
        trace = json.load(f)
    events = trace["traceEvents"]
    if not events:
        return fail("trace has no events")

    rc = 0
    counts = {}
    for e in events:
        counts[e["name"]] = counts.get(e["name"], 0) + 1
        # site is a full int32 since the virtualized-site engine (k up
        # to 10^5..10^6); -1 is the coordinator/global sentinel, anything
        # below it means a narrowing cast crept back into an emit site.
        site = e.get("args", {}).get("site")
        if site is not None and site < -1:
            rc |= fail(f"negative site id {site} in event {e['name']}")
    missing = REQUIRED_TYPES - counts.keys()
    if missing:
        rc |= fail(f"missing event types: {sorted(missing)}")

    # Causality: delivery implies a recorded upstream send of the same
    # (shard, site, epoch, seq), and each stamp is delivered at most
    # once. Only stamped messages (seq > 0) participate.
    sends = set()
    for e in events:
        a = e["args"]
        if e["name"] == "msg_send" and a["dir"] == 1 and a["seq"] > 0:
            sends.add((a["shard"], a["site"], a["epoch"], a["seq"]))
    delivered = set()
    for e in events:
        if e["name"] != "msg_deliver":
            continue
        a = e["args"]
        key = (a["shard"], a["site"], a["epoch"], a["seq"])
        if key in delivered:
            rc |= fail(f"stamp delivered twice: {key}")
        delivered.add(key)
        if a["seq"] > 0 and key not in sends:
            rc |= fail(f"delivery without a recorded send: {key}")

    report = None
    if args.report:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
        if report.get("trace/dropped", 0) != 0:
            print(f"note: {report['trace/dropped']} events overwritten on "
                  "ring wrap — skipping count reconciliation")
        else:
            for name, field in REPORT_COUNTS.items():
                want = report.get(field)
                got = counts.get(name, 0)
                if want is None:
                    rc |= fail(f"report is missing {field}")
                elif want != got:
                    rc |= fail(f"{name} count {got} != {field} {want}")

    if rc == 0:
        print(f"trace ok: {len(events)} events, {len(counts)} types, "
              f"{len(delivered)} causally-matched deliveries"
              + (", counts reconcile with the fault report" if report
                 else ""))
    return rc


if __name__ == "__main__":
    sys.exit(main())
