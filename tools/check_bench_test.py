#!/usr/bin/env python3
"""Unit tests for the bench regression gate (tools/check_bench.py).

The gate is itself CI-critical — a bug that silently skips a row would
un-gate a real regression — so the tool's row-matching, tolerance,
normalization and merge logic get the same treatment as library code.
Run directly or from the bench-quick CI job:

    python3 tools/check_bench_test.py
"""

import copy
import importlib.util
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "check_bench", os.path.join(_HERE, "check_bench.py"))
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


def make_baseline():
    """A two-field bench shaped like engine_throughput: items_per_sec
    normalized by a sim reference, queries_per_sec by a per-field
    reference, query_us_mean gated lower-is-better on one row only."""
    return {
        "max_drop": 0.25,
        "benches": {
            "demo": {
                "key_fields": ["workload", "backend"],
                "gate_fields": ["items_per_sec", "queries_per_sec"],
                "gate_fields_lower": ["query_us_mean"],
                "max_drop": 0.5,
                "max_rise": 3.0,
                "reference": {"workload": "zipf", "backend": "sim"},
                "references": {
                    "queries_per_sec": {"workload": "qs_r1",
                                        "backend": "sharded"},
                },
                "rows": [
                    {"workload": "zipf", "backend": "sim",
                     "items_per_sec": 1000.0},
                    {"workload": "zipf", "backend": "engine",
                     "items_per_sec": 2000.0},
                    {"workload": "qs_r1", "backend": "sharded",
                     "queries_per_sec": 100.0},
                    {"workload": "qs_r8", "backend": "sharded",
                     "queries_per_sec": 800.0, "query_us_mean": 2.0},
                ],
            }
        },
    }


def current_rows_matching(baseline):
    return copy.deepcopy(baseline["benches"]["demo"]["rows"])


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.build_dir = self._tmp.name
        self.addCleanup(self._tmp.cleanup)

    def write_bench(self, rows, name="demo"):
        path = os.path.join(self.build_dir, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"name": name, "rows": rows}, f)

    def check(self, baseline, allow_missing=False):
        return check_bench.check(baseline, self.build_dir,
                                 allow_missing=allow_missing)

    def test_identical_run_passes(self):
        baseline = make_baseline()
        self.write_bench(current_rows_matching(baseline))
        failures, notes = self.check(baseline)
        self.assertEqual(failures, [])
        # Every gated (row, field) pair produced a note.
        self.assertTrue(any("qs_r8" in n for n in notes))

    def test_missing_row_is_hard_failure(self):
        baseline = make_baseline()
        rows = [r for r in current_rows_matching(baseline)
                if r["workload"] != "qs_r8"]
        self.write_bench(rows)
        failures, _ = self.check(baseline)
        self.assertTrue(any("qs_r8" in f and "missing" in f
                            for f in failures), failures)

    def test_allow_missing_downgrades_missing_row(self):
        baseline = make_baseline()
        rows = [r for r in current_rows_matching(baseline)
                if r["workload"] != "qs_r8"]
        self.write_bench(rows)
        failures, notes = self.check(baseline, allow_missing=True)
        self.assertEqual(failures, [])
        self.assertTrue(any(n.startswith("skip") and "qs_r8" in n
                            for n in notes), notes)

    def test_missing_bench_file_fails_unless_allowed(self):
        baseline = make_baseline()  # no BENCH_demo.json written
        failures, _ = self.check(baseline)
        self.assertTrue(any("did not run" in f for f in failures), failures)
        failures, notes = self.check(baseline, allow_missing=True)
        self.assertEqual(failures, [])
        self.assertTrue(any("did not run" in n for n in notes), notes)

    def test_missing_gated_field_fails_unless_allowed(self):
        baseline = make_baseline()
        rows = current_rows_matching(baseline)
        del rows[3]["queries_per_sec"]
        self.write_bench(rows)
        failures, _ = self.check(baseline)
        self.assertTrue(any("queries_per_sec" in f and "missing" in f
                            for f in failures), failures)
        failures, _ = self.check(baseline, allow_missing=True)
        self.assertEqual(failures, [])

    def test_drop_beyond_tolerance_fails(self):
        baseline = make_baseline()
        rows = current_rows_matching(baseline)
        rows[3]["queries_per_sec"] = 100.0  # 8x drop, reference unchanged
        self.write_bench(rows)
        failures, _ = self.check(baseline)
        self.assertTrue(any(f.startswith("DROP") and "qs_r8" in f
                            for f in failures), failures)

    def test_lower_field_rise_beyond_tolerance_fails(self):
        baseline = make_baseline()
        rows = current_rows_matching(baseline)
        rows[3]["query_us_mean"] = 9.0  # 4.5x rise > 1 + max_rise
        self.write_bench(rows)
        failures, _ = self.check(baseline)
        self.assertTrue(any(f.startswith("RISE") for f in failures),
                        failures)
        rows[3]["query_us_mean"] = 7.9  # just under the 8.0 ceiling
        self.write_bench(rows)
        failures, _ = self.check(baseline)
        self.assertEqual(failures, [])

    def test_uniform_slowdown_passes_via_per_field_reference(self):
        # Halve every row: absolutely each is at the 0.5 edge of failing,
        # but both the items_per_sec reference (sim) and the per-field
        # queries_per_sec reference (qs_r1) halve too, so the normalized
        # ratios are exactly 1.0 and the machine-speed change cancels.
        baseline = make_baseline()
        rows = current_rows_matching(baseline)
        for row in rows:
            for field in ("items_per_sec", "queries_per_sec"):
                if field in row:
                    row[field] *= 0.45
        self.write_bench(rows)
        failures, _ = self.check(baseline)
        self.assertEqual(failures, [])

    def test_reference_row_regression_still_caught(self):
        # Only the per-field reference row collapses: it is gated
        # absolutely (wide band), so a 100x cliff on it still fails.
        baseline = make_baseline()
        rows = current_rows_matching(baseline)
        rows[2]["queries_per_sec"] = 1.0
        self.write_bench(rows)
        failures, _ = self.check(baseline)
        self.assertTrue(any("qs_r1" in f for f in failures), failures)

    def test_update_merge_min_keeps_conservative_bounds(self):
        baseline = make_baseline()
        rows = current_rows_matching(baseline)
        rows[3]["queries_per_sec"] = 600.0  # slower than stored 800
        rows[3]["query_us_mean"] = 3.5      # slower than stored 2.0
        rows[1]["items_per_sec"] = 5000.0   # faster than stored 2000
        self.write_bench(rows)
        baseline_path = os.path.join(self.build_dir, "baseline.json")
        check_bench.update(baseline, self.build_dir, baseline_path,
                           merge="min")
        written = check_bench.load_json(baseline_path)
        by_key = {(r["workload"], r["backend"]): r
                  for r in written["benches"]["demo"]["rows"]}
        self.assertEqual(by_key[("qs_r8", "sharded")]["queries_per_sec"],
                         600.0)
        self.assertEqual(by_key[("qs_r8", "sharded")]["query_us_mean"], 3.5)
        # min-merge keeps the smaller stored throughput, not the faster
        # measurement.
        self.assertEqual(by_key[("zipf", "engine")]["items_per_sec"], 2000.0)

    def test_update_adds_new_rows(self):
        baseline = make_baseline()
        rows = current_rows_matching(baseline)
        rows.append({"workload": "qs_r4", "backend": "sharded",
                     "queries_per_sec": 400.0, "messages": 123})
        self.write_bench(rows)
        baseline_path = os.path.join(self.build_dir, "baseline.json")
        check_bench.update(baseline, self.build_dir, baseline_path)
        written = check_bench.load_json(baseline_path)
        by_key = {r["workload"]: r
                  for r in written["benches"]["demo"]["rows"]}
        self.assertIn("qs_r4", by_key)
        # Only key + gated fields are stored, not incidental ones.
        self.assertNotIn("messages", by_key["qs_r4"])


if __name__ == "__main__":
    sys.exit(unittest.main())
