#!/usr/bin/env python3
"""Unit tests for the scenario envelope gate (tools/check_envelopes.py).

The gate is itself CI-critical — a bug that silently skips a matrix cell
would un-gate a real accuracy or message-cost regression — so its
row-matching, floor/ceiling arithmetic, required-value checks and merge
logic get the same treatment as library code. Run directly or from the
scenario-matrix CI job:

    python3 tools/check_envelopes_test.py
"""

import copy
import importlib.util
import json
import os
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "check_envelopes", os.path.join(_HERE, "check_envelopes.py"))
check_envelopes = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_envelopes)

P_FLOOR = 1e-3


def make_envelopes():
    """One sim cell (p-values + churn counters) and one engine cell
    (bit-identity), shaped like real bench_scenarios rows."""
    return {
        "rows": [
            {"scenario": "site_churn", "protocol": "wswor", "backend": "sim",
             "chisq_p": 0.42, "ks_p": 0.37,
             "messages_mean": 700.0, "messages_max": 750.0,
             "churn_applied": 1, "trials": 150,
             "degraded_trials": 0, "silent_wrong": 0},
            {"scenario": "site_churn", "protocol": "wswor",
             "backend": "engine",
             "messages_mean": 700.0, "messages_max": 710.0,
             "churn_applied": 1, "trials": 3, "bit_identical": 1},
        ],
    }


def healthy_rows(envelopes):
    """Current rows that reproduce the envelope exactly."""
    return copy.deepcopy(envelopes["rows"])


def run_check(envelopes, rows):
    return check_envelopes.check(envelopes, rows, P_FLOOR)


class CheckTest(unittest.TestCase):
    def test_healthy_run_passes(self):
        env = make_envelopes()
        failures, notes = run_check(env, healthy_rows(env))
        self.assertEqual(failures, [])
        self.assertTrue(notes)

    def test_missing_row_is_hard_failure(self):
        env = make_envelopes()
        rows = healthy_rows(env)[1:]  # drop the sim cell
        failures, _ = run_check(env, rows)
        self.assertEqual(len(failures), 1)
        self.assertIn("MISSING", failures[0])
        self.assertIn("backend=sim", failures[0])

    def test_missing_gated_field_is_failure(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        del rows[0]["chisq_p"]
        failures, _ = run_check(env, rows)
        self.assertEqual(len(failures), 1)
        self.assertIn("chisq_p absent", failures[0])

    def test_p_value_below_floor_fails(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows[0]["chisq_p"] = 1e-5
        failures, _ = run_check(env, rows)
        self.assertEqual(len(failures), 1)
        self.assertTrue(failures[0].startswith("FLOOR"))

    def test_p_value_is_absolute_not_relative(self):
        # A p far below the recorded 0.42 but above the floor is healthy:
        # the gate must not compare p-values to the recorded run.
        env = make_envelopes()
        rows = healthy_rows(env)
        rows[0]["chisq_p"] = 0.02
        failures, _ = run_check(env, rows)
        self.assertEqual(failures, [])

    def test_message_cost_ceiling(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        # messages_mean headroom is 35%: 700 * 1.35 = 945.
        rows[0]["messages_mean"] = 944.0
        failures, _ = run_check(env, rows)
        self.assertEqual(failures, [])
        rows[0]["messages_mean"] = 946.0
        failures, _ = run_check(env, rows)
        self.assertEqual(len(failures), 1)
        self.assertTrue(failures[0].startswith("CEIL"))
        self.assertIn("messages_mean", failures[0])

    def test_degraded_trials_absolute_slack(self):
        # Recorded 0: up to +2 trials may degrade before the gate fires.
        env = make_envelopes()
        rows = healthy_rows(env)
        rows[0]["degraded_trials"] = 2
        failures, _ = run_check(env, rows)
        self.assertEqual(failures, [])
        rows[0]["degraded_trials"] = 3
        failures, _ = run_check(env, rows)
        self.assertEqual(len(failures), 1)
        self.assertIn("degraded_trials", failures[0])

    def test_silent_wrong_required_zero(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows[0]["silent_wrong"] = 1
        failures, _ = run_check(env, rows)
        self.assertEqual(len(failures), 1)
        self.assertTrue(failures[0].startswith("REQ"))
        self.assertIn("silent_wrong", failures[0])

    def test_bit_identical_required_one(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows[1]["bit_identical"] = 0
        failures, _ = run_check(env, rows)
        self.assertEqual(len(failures), 1)
        self.assertTrue(failures[0].startswith("REQ"))
        self.assertIn("bit_identical", failures[0])

    def test_identity_mismatch_fails(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows[0]["churn_applied"] = 0
        failures, _ = run_check(env, rows)
        self.assertEqual(len(failures), 1)
        self.assertTrue(failures[0].startswith("MATCH"))

    def test_new_row_is_note_not_failure(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows.append({"scenario": "brand_new", "protocol": "wswor",
                     "backend": "sim", "chisq_p": 0.5})
        failures, notes = run_check(env, rows)
        self.assertEqual(failures, [])
        self.assertTrue(any("new" in n and "brand_new" in n for n in notes))

    def test_duplicate_key_rejected(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows.append(copy.deepcopy(rows[0]))
        with self.assertRaises(SystemExit):
            run_check(env, rows)


class UpdateTest(unittest.TestCase):
    def _do_update(self, envelopes, rows):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "envelopes.json")
            check_envelopes.update(envelopes, rows, path)
            with open(path, "r", encoding="utf-8") as f:
                return json.load(f)

    def test_update_overwrites_matching_cell(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows[0]["messages_mean"] = 123.0
        merged = self._do_update(copy.deepcopy(env), rows)
        sim = [r for r in merged["rows"] if r["backend"] == "sim"][0]
        self.assertEqual(sim["messages_mean"], 123.0)

    def test_update_keeps_cells_not_in_run(self):
        # A restricted run must not un-gate the rest of the matrix.
        env = make_envelopes()
        rows = healthy_rows(env)[:1]  # only the sim cell ran
        merged = self._do_update(copy.deepcopy(env), rows)
        self.assertEqual(len(merged["rows"]), 2)
        engine = [r for r in merged["rows"] if r["backend"] == "engine"][0]
        self.assertEqual(engine["bit_identical"], 1)

    def test_update_adds_new_cell(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows.append({"scenario": "brand_new", "protocol": "l1",
                     "backend": "sim", "rel_err_max": 0.2, "trials": 150})
        merged = self._do_update(copy.deepcopy(env), rows)
        self.assertEqual(len(merged["rows"]), 3)
        new = [r for r in merged["rows"] if r["scenario"] == "brand_new"][0]
        self.assertEqual(new["rel_err_max"], 0.2)

    def test_update_strips_ungated_fields(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows[0]["wall_seconds"] = 1.7  # measurement noise, not an envelope
        merged = self._do_update(copy.deepcopy(env), rows)
        sim = [r for r in merged["rows"] if r["backend"] == "sim"][0]
        self.assertNotIn("wall_seconds", sim)

    def test_update_then_check_round_trips(self):
        env = make_envelopes()
        rows = healthy_rows(env)
        rows[0]["messages_mean"] = 650.0
        merged = self._do_update(copy.deepcopy(env), rows)
        failures, _ = check_envelopes.check(merged, rows, P_FLOOR)
        self.assertEqual(failures, [])


if __name__ == "__main__":
    unittest.main()
