#!/usr/bin/env python3
"""Scenario-matrix envelope gate.

Compares the BENCH_scenarios.json rows emitted by `bench_scenarios
--quick` against the committed bench/envelopes.json and fails (exit 1)
when any protocol x scenario x backend cell drifts outside its envelope.
Run from CI after the scenario-matrix job, or locally:

    python3 tools/check_envelopes.py --build-dir build
    python3 tools/check_envelopes.py --build-dir build --update

Rows are keyed on (scenario, protocol, backend). An envelope row with no
matching current row is a HARD failure — a silently vanished matrix cell
is itself a regression — and so is a gated field present in the envelope
but absent from the current row. Current rows not in the envelope are
reported as new (run --update to gate them).

Field policies (why each gate has the shape it does):

  p-value floors (chisq_p, ks_p): gated against the ABSOLUTE floor
      --p-floor (default 1e-3), not against the recorded value. The
      recorded p documents the healthy run; comparing p to it would turn
      libm jitter across platforms into failures, while the floor only
      fires on actual distributional breakage (an exact protocol's fixed-
      seed p sits far above 1e-3 unless the law itself changed).

  ceilings (messages_mean, messages_max, rel_err_med, rel_err_max,
      degraded_trials): current <= recorded * (1 + headroom) + slack,
      with per-field headroom (CEILINGS). Message costs and accuracy
      errors may only regress by the headroom fraction; the absolute
      slack term keeps near-zero recorded values (e.g. degraded_trials
      = 0) from demanding exact reproduction across platforms.

  exact requirements (REQUIRED): silent_wrong must be 0 and engine rows'
      bit_identical must be 1 — these encode correctness claims (never
      silently wrong under churn; engine replays the simulator bit for
      bit), so no drift is tolerable.

  identity fields (MATCH): churn_applied, trials, items must equal the
      recorded value — a cell that silently changed its configuration is
      not comparable to its envelope.

--update merges the current rows into envelopes.json by key: matching
cells are overwritten with fresh measurements, cells the run did not
produce are kept (a restricted run must not un-gate the rest of the
matrix), and new cells are added.
"""

import argparse
import json
import os
import sys

KEY_FIELDS = ["scenario", "protocol", "backend"]

# Fields gated as floors against --p-floor (absolute, not vs recorded).
P_FLOOR_FIELDS = ["chisq_p", "ks_p"]

# field -> (fractional headroom, absolute slack).
CEILINGS = {
    "messages_mean": (0.35, 0.0),
    "messages_max": (0.50, 0.0),
    "rel_err_med": (0.75, 0.0),
    "rel_err_max": (0.75, 0.0),
    "degraded_trials": (0.0, 2.0),
}

# field -> required exact value.
REQUIRED = {
    "silent_wrong": 0,
    "bit_identical": 1,
}

# Fields that must match the recorded envelope exactly (cell identity).
MATCH = ["churn_applied", "trials", "items"]

GATED_FIELDS = (P_FLOOR_FIELDS + list(CEILINGS) + list(REQUIRED) + MATCH)


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def row_key(row):
    return tuple((k, row.get(k)) for k in KEY_FIELDS)


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def index_rows(rows):
    out = {}
    for row in rows:
        key = row_key(row)
        if key in out:
            raise SystemExit(f"duplicate row key {fmt_key(key)}")
        out[key] = row
    return out


def check(envelopes, current_rows, p_floor):
    failures = []
    notes = []
    current = index_rows(current_rows)
    recorded = index_rows(envelopes["rows"])

    for key, env_row in recorded.items():
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"MISSING {fmt_key(key)}: cell absent from "
                            "current run")
            continue
        for field in P_FLOOR_FIELDS:
            if field not in env_row:
                continue
            cur = cur_row.get(field)
            if cur is None:
                failures.append(f"MISSING {fmt_key(key)}: {field} absent "
                                "from current run")
                continue
            line = f"{fmt_key(key)}: {field} {cur:.4g} (floor {p_floor:g})"
            if cur >= p_floor:
                notes.append("ok    " + line)
            else:
                failures.append("FLOOR " + line)
        for field, (headroom, slack) in CEILINGS.items():
            if field not in env_row:
                continue
            cur = cur_row.get(field)
            if cur is None:
                failures.append(f"MISSING {fmt_key(key)}: {field} absent "
                                "from current run")
                continue
            bound = env_row[field] * (1.0 + headroom) + slack
            line = (f"{fmt_key(key)}: {field} {cur:.4g} vs envelope "
                    f"{env_row[field]:.4g} (ceiling {bound:.4g})")
            if cur <= bound:
                notes.append("ok    " + line)
            else:
                failures.append("CEIL  " + line)
        for field, want in REQUIRED.items():
            if field not in env_row:
                continue
            cur = cur_row.get(field)
            line = f"{fmt_key(key)}: {field} {cur} (required {want})"
            if cur == want:
                notes.append("ok    " + line)
            else:
                failures.append("REQ   " + line)
        for field in MATCH:
            if field not in env_row:
                continue
            cur = cur_row.get(field)
            if cur != env_row[field]:
                failures.append(f"MATCH {fmt_key(key)}: {field} {cur} != "
                                f"recorded {env_row[field]}")
    for key in current:
        if key not in recorded:
            notes.append(f"new   {fmt_key(key)}: not in envelopes "
                         "(run --update to gate it)")
    return failures, notes


def update(envelopes, current_rows, envelopes_path):
    merged = index_rows(envelopes.get("rows", []))
    for row in current_rows:
        kept = {k: row[k] for k in KEY_FIELDS + GATED_FIELDS if k in row}
        merged[row_key(row)] = kept
    envelopes["rows"] = list(merged.values())
    with open(envelopes_path, "w", encoding="utf-8") as f:
        json.dump(envelopes, f, indent=1)
        f.write("\n")
    print(f"envelopes updated: {envelopes_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="directory holding BENCH_scenarios.json")
    parser.add_argument("--envelopes", default=None,
                        help="envelope file (default: bench/envelopes.json)")
    parser.add_argument("--p-floor", type=float, default=1e-3,
                        help="absolute p-value floor for chisq_p / ks_p")
    parser.add_argument("--update", action="store_true",
                        help="merge the current rows into the envelopes")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    envelopes_path = args.envelopes or os.path.join(repo_root, "bench",
                                                    "envelopes.json")
    bench_path = os.path.join(args.build_dir, "BENCH_scenarios.json")
    if not os.path.exists(bench_path):
        print(f"{bench_path} not found — bench_scenarios did not run",
              file=sys.stderr)
        return 1
    current_rows = load_json(bench_path)["rows"]

    if args.update:
        envelopes = (load_json(envelopes_path)
                     if os.path.exists(envelopes_path) else {"rows": []})
        update(envelopes, current_rows, envelopes_path)
        return 0

    envelopes = load_json(envelopes_path)
    failures, notes = check(envelopes, current_rows, args.p_floor)
    for line in notes:
        print(line)
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        print(f"\nenvelope gate FAILED: {len(failures)} cell(s) outside "
              "their envelope", file=sys.stderr)
        return 1
    print(f"\nenvelope gate passed ({len(notes)} checks within envelopes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
