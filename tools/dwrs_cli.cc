// Command-line driver: runs any of the distributed samplers/trackers on
// a configurable synthetic workload and prints message statistics (and
// optionally a CSV row), so experiments beyond the canned benches can be
// scripted without writing C++.
//
// Usage:
//   dwrs_cli [stats|trace|recover|wal-dump] [flags]
//
// Default (no subcommand): run one sampler/tracker and print totals.
//   dwrs_cli [--algo=wswor|naive|uswor|wswr|residual_hh|l1|det_l1|sqrtk_l1]
//            [--k=16] [--s=32] [--n=100000] [--seed=1]
//            [--eps=0.1] [--delta=0.1]
//            [--dist=uniform:1,16 | zipf:1.2 | pareto:1.3 | const:1 |
//             geometric:0.1]
//            [--partition=random | rr | single | block:64]
//            [--window=4096]  (algo=window)
//            [--csv]          (print a single machine-readable row)
//
// `stats`: same run, but print the unified observability snapshot as
// JSON — the exact field schema of obs/schema.h, shared with the bench
// JSON rows and every ToString in the tree.
//
// `trace`: seeded faulty sharded wswor run with the flight recorder on;
// writes Chrome trace_event JSON (chrome://tracing, Perfetto) to --out
// and prints the run's fault-report snapshot as JSON. Extra flags:
//   [--shards=4] [--drop=0.05] [--dup=0.05] [--delay=0] [--crash=0.002]
//   [--fault-seed=7] [--backend=engine|sim] [--out=trace.json]
//   [--deterministic]  (zero timestamps: same seed => same event stream)
//
// `recover`: durable sharded wswor ingest against an on-disk state
// directory (WAL + checkpoints, src/durability/). Three roles, so a
// kill-and-recover round trip can be scripted (CI's recovery-soak job):
//   dwrs_cli recover --dir=state --kill-at-step=40   # dies with SIGKILL
//   dwrs_cli recover --dir=state --resume            # recovers, finishes
//   dwrs_cli recover --reference                     # uninterrupted run
// All three print a JSON snapshot whose `sample_hash` must agree between
// the resumed run and the reference. Extra flags:
//   [--dir=dwrs_state] [--shards=2] [--kill-at-step=0] [--resume]
//   [--reference] [--kill-prob=0] [--commit-interval=4]
//   [--checkpoint-interval=32] [--fault-seed=7] [--backend=engine|sim]
//
// `wal-dump`: decode one WAL segment and print a JSON line per record
// (plus a summary on stderr). Flags: --file=<wal-N.log>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dwrs.h"
#include "durability/durable_shard.h"
#include "faults/harness.h"
#include "obs/metrics.h"
#include "obs/schema.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/math_util.h"

namespace dwrs {
namespace {

struct Options {
  std::string mode = "run";  // run | stats | trace (argv[1] subcommand)
  std::string algo = "wswor";
  int k = 16;
  int s = 32;
  uint64_t n = 100000;
  uint64_t seed = 1;
  double eps = 0.1;
  double delta = 0.1;
  uint64_t window = 4096;
  std::string dist = "uniform:1,16";
  std::string partition = "random";
  bool csv = false;
  // trace-mode fault schedule and output.
  int shards = 4;
  double drop = 0.05;
  double dup = 0.05;
  double delay = 0.0;
  double crash = 0.002;
  uint64_t fault_seed = 7;
  std::string backend = "engine";
  std::string out = "trace.json";
  bool deterministic = false;
  // recover-mode durable state + kill driving.
  std::string dir = "dwrs_state";
  uint64_t kill_at_step = 0;
  bool resume = false;
  bool reference = false;
  double kill_prob = 0.0;
  uint64_t commit_interval = 4;
  uint64_t checkpoint_interval = 32;
  // wal-dump input.
  std::string file;
};

bool ConsumeFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

Options Parse(int argc, char** argv) {
  Options opt;
  int first_flag = 1;
  if (argc > 1 && argv[1][0] != '-') {
    opt.mode = argv[1];
    if (opt.mode != "stats" && opt.mode != "trace" && opt.mode != "recover" &&
        opt.mode != "wal-dump") {
      std::fprintf(stderr,
                   "unknown subcommand: %s (stats|trace|recover|wal-dump)\n",
                   argv[1]);
      std::exit(2);
    }
    first_flag = 2;
  }
  for (int i = first_flag; i < argc; ++i) {
    std::string v;
    if (ConsumeFlag(argv[i], "--algo", &v)) {
      opt.algo = v;
    } else if (ConsumeFlag(argv[i], "--k", &v)) {
      opt.k = std::atoi(v.c_str());
    } else if (ConsumeFlag(argv[i], "--s", &v)) {
      opt.s = std::atoi(v.c_str());
    } else if (ConsumeFlag(argv[i], "--n", &v)) {
      opt.n = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--seed", &v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--eps", &v)) {
      opt.eps = std::atof(v.c_str());
    } else if (ConsumeFlag(argv[i], "--delta", &v)) {
      opt.delta = std::atof(v.c_str());
    } else if (ConsumeFlag(argv[i], "--window", &v)) {
      opt.window = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--dist", &v)) {
      opt.dist = v;
    } else if (ConsumeFlag(argv[i], "--partition", &v)) {
      opt.partition = v;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      opt.csv = true;
    } else if (ConsumeFlag(argv[i], "--shards", &v)) {
      opt.shards = std::atoi(v.c_str());
    } else if (ConsumeFlag(argv[i], "--drop", &v)) {
      opt.drop = std::atof(v.c_str());
    } else if (ConsumeFlag(argv[i], "--dup", &v)) {
      opt.dup = std::atof(v.c_str());
    } else if (ConsumeFlag(argv[i], "--delay", &v)) {
      opt.delay = std::atof(v.c_str());
    } else if (ConsumeFlag(argv[i], "--crash", &v)) {
      opt.crash = std::atof(v.c_str());
    } else if (ConsumeFlag(argv[i], "--fault-seed", &v)) {
      opt.fault_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--backend", &v)) {
      opt.backend = v;
    } else if (ConsumeFlag(argv[i], "--out", &v)) {
      opt.out = v;
    } else if (std::strcmp(argv[i], "--deterministic") == 0) {
      opt.deterministic = true;
    } else if (ConsumeFlag(argv[i], "--dir", &v)) {
      opt.dir = v;
    } else if (ConsumeFlag(argv[i], "--kill-at-step", &v)) {
      opt.kill_at_step = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      opt.resume = true;
    } else if (std::strcmp(argv[i], "--reference") == 0) {
      opt.reference = true;
    } else if (ConsumeFlag(argv[i], "--kill-prob", &v)) {
      opt.kill_prob = std::atof(v.c_str());
    } else if (ConsumeFlag(argv[i], "--commit-interval", &v)) {
      opt.commit_interval = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--checkpoint-interval", &v)) {
      opt.checkpoint_interval = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--file", &v)) {
      opt.file = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return opt;
}

std::unique_ptr<WeightGenerator> MakeWeights(const std::string& spec) {
  const size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string args =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (kind == "uniform") {
    double lo = 1.0, hi = 16.0;
    std::sscanf(args.c_str(), "%lf,%lf", &lo, &hi);
    return std::make_unique<UniformWeights>(lo, hi);
  }
  if (kind == "zipf") {
    const double alpha = args.empty() ? 1.2 : std::atof(args.c_str());
    return std::make_unique<ZipfWeights>(1u << 20, alpha);
  }
  if (kind == "pareto") {
    const double alpha = args.empty() ? 1.3 : std::atof(args.c_str());
    return std::make_unique<ParetoWeights>(alpha);
  }
  if (kind == "const") {
    const double w = args.empty() ? 1.0 : std::atof(args.c_str());
    return std::make_unique<ConstantWeights>(w);
  }
  if (kind == "geometric") {
    const double eps = args.empty() ? 0.1 : std::atof(args.c_str());
    return std::make_unique<GeometricGrowthWeights>(eps);
  }
  std::fprintf(stderr, "unknown --dist kind: %s\n", kind.c_str());
  std::exit(2);
}

std::unique_ptr<Partitioner> MakePartition(const std::string& spec) {
  if (spec == "random") return std::make_unique<RandomPartitioner>();
  if (spec == "rr") return std::make_unique<RoundRobinPartitioner>();
  if (spec == "single") return std::make_unique<SingleSitePartitioner>(0);
  if (spec.rfind("block:", 0) == 0) {
    return std::make_unique<BlockPartitioner>(
        std::strtoull(spec.c_str() + 6, nullptr, 10));
  }
  std::fprintf(stderr, "unknown --partition: %s\n", spec.c_str());
  std::exit(2);
}

struct RunResult {
  uint64_t messages = 0;
  uint64_t words = 0;
  uint64_t broadcasts = 0;
  double theory = 0.0;
  std::string extra;
  sim::MessageStats stats;  // full counters, for the stats subcommand
};

RunResult Dispatch(const Options& opt, const Workload& w) {
  RunResult r;
  const double total = w.TotalWeight();
  if (opt.algo == "wswor") {
    DistributedWswor sampler(WsworConfig{
        .num_sites = opt.k, .sample_size = opt.s, .seed = opt.seed});
    sampler.Run(w);
    r = {sampler.stats().total_messages(), sampler.stats().words,
         sampler.stats().broadcast_events,
         Theorem3MessageBound(opt.k, opt.s, total),
         "sample=" + std::to_string(sampler.Sample().size()), sampler.stats()};
  } else if (opt.algo == "naive") {
    NaiveDistributedWswor sampler(opt.k, opt.s, opt.seed);
    sampler.Run(w);
    r = {sampler.stats().total_messages(), sampler.stats().words,
         sampler.stats().broadcast_events,
         NaiveMessageBound(opt.k, opt.s, total), "", sampler.stats()};
  } else if (opt.algo == "uswor") {
    UsworConfig config;
    config.num_sites = opt.k;
    config.sample_size = opt.s;
    config.seed = opt.seed;
    DistributedUnweightedSwor sampler(config);
    sampler.Run(w);
    r = {sampler.stats().total_messages(), sampler.stats().words,
         sampler.stats().broadcast_events,
         Theorem3MessageBound(opt.k, opt.s, static_cast<double>(opt.n)), "", sampler.stats()};
  } else if (opt.algo == "wswr") {
    DistributedWeightedSwr sampler(opt.k, opt.s, opt.seed);
    sampler.Run(w);
    r = {sampler.stats().total_messages(), sampler.stats().words,
         sampler.stats().broadcast_events,
         Corollary1MessageBound(opt.k, opt.s, total),
         "distinct=" + std::to_string(sampler.DistinctInSample()), sampler.stats()};
  } else if (opt.algo == "residual_hh") {
    ResidualHeavyHitterTracker tracker(
        ResidualHhConfig{opt.k, opt.eps, opt.delta, opt.seed});
    tracker.Run(w);
    r = {tracker.stats().total_messages(), tracker.stats().words,
         tracker.stats().broadcast_events,
         Theorem4MessageBound(opt.k, opt.eps, opt.delta, total),
         "reported=" + std::to_string(tracker.HeavyHitters().size()), tracker.stats()};
  } else if (opt.algo == "l1") {
    L1Tracker tracker(L1TrackerConfig{
        .num_sites = opt.k, .eps = opt.eps, .delta = opt.delta,
        .seed = opt.seed});
    tracker.Run(w);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "West=%.6g trueW=%.6g",
                  tracker.Estimate(), total);
    r = {tracker.stats().total_messages(), tracker.stats().words,
         tracker.stats().broadcast_events,
         Theorem6MessageBound(opt.k, opt.eps, opt.delta, total), buf, tracker.stats()};
  } else if (opt.algo == "det_l1") {
    DeterministicL1Tracker tracker(opt.k, opt.eps);
    tracker.Run(w);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "West=%.6g trueW=%.6g",
                  tracker.Estimate(), total);
    r = {tracker.stats().total_messages(), tracker.stats().words,
         tracker.stats().broadcast_events,
         opt.k * std::log(std::max(2.0, total)) / opt.eps, buf, tracker.stats()};
  } else if (opt.algo == "sqrtk_l1") {
    SqrtkL1Tracker tracker(opt.k, opt.eps, opt.seed);
    tracker.Run(w);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "West=%.6g trueW=%.6g",
                  tracker.Estimate(), total);
    r = {tracker.stats().total_messages(), tracker.stats().words,
         tracker.stats().broadcast_events,
         HyzMessageBound(opt.k, opt.eps, total), buf, tracker.stats()};
  } else if (opt.algo == "window") {
    DistributedWindowWswor sampler(WindowConfig{
        opt.k, opt.s, opt.window, opt.seed});
    sampler.Run(w);
    r = {sampler.stats().total_messages(), sampler.stats().words,
         sampler.stats().broadcast_events, 0.0,
         "sample=" + std::to_string(sampler.Sample().size()) +
             " skyline=" + std::to_string(sampler.CoordinatorSkyline()), sampler.stats()};
  } else {
    std::fprintf(stderr, "unknown --algo: %s\n", opt.algo.c_str());
    std::exit(2);
  }
  return r;
}

// `stats`: one run, exported through the registry -> snapshot -> JSON
// path every other emitter (bench rows, ToString) uses. The algo and
// workload strings are spliced in front (Snapshot holds numbers only).
int RunStatsMode(const Options& opt, const Workload& w) {
  const RunResult result = Dispatch(opt, w);
  obs::Registry registry;
  registry.AddCollector([&](obs::Snapshot* snap) {
    snap->Append("k", static_cast<uint64_t>(opt.k));
    snap->Append("s", static_cast<uint64_t>(opt.s));
    snap->Append("n", opt.n);
    snap->Append("seed", opt.seed);
    snap->Append("total_weight", w.TotalWeight());
    AppendMessageStats(result.stats, "", snap);
    snap->Append("theory_bound", result.theory);
  });
  const std::string body = registry.ToJson();
  std::printf("{\"algo\": %s, \"dist\": %s, \"partition\": %s%s%s\n",
              util::JsonQuote(opt.algo).c_str(),
              util::JsonQuote(opt.dist).c_str(),
              util::JsonQuote(opt.partition).c_str(),
              body == "{}" ? "" : ", ", body.c_str() + 1);
  return 0;
}

// `trace`: the acceptance scenario as a command — seeded faulty sharded
// wswor with the flight recorder on, Chrome trace JSON to --out, the
// fault-report snapshot to stdout. CI's trace smoke job runs this and
// validates the file with tools/check_trace.py.
int RunTraceMode(const Options& opt, const Workload& w) {
  if (opt.backend != "engine" && opt.backend != "sim") {
    std::fprintf(stderr, "unknown --backend: %s (engine|sim)\n",
                 opt.backend.c_str());
    return 2;
  }
  obs::FlightRecorder& recorder = obs::FlightRecorder::Get();
  recorder.Enable(1 << 16, opt.deterministic);
  if (!obs::TracingEnabled()) {
    std::fprintf(stderr,
                 "tracing compiled out (-DDWRS_TRACING=OFF); no trace\n");
    return 1;
  }

  const WsworConfig config{
      .num_sites = opt.k, .sample_size = opt.s, .seed = opt.seed};
  std::vector<faults::FaultConfig> shard_faults;
  for (int j = 0; j < opt.shards; ++j) {
    faults::FaultConfig fc;
    fc.seed = opt.fault_seed + static_cast<uint64_t>(j);
    fc.drop_prob = opt.drop;
    fc.duplicate_prob = opt.dup;
    fc.delay_prob = opt.delay;
    fc.crash_prob = opt.crash;
    shard_faults.push_back(fc);
  }
  const auto backend = opt.backend == "sim" ? faults::Backend::kSim
                                            : faults::Backend::kEngine;
  faults::ShardedFaultyWswor run(config, shard_faults, backend);
  run.Run(w);
  const faults::RunReport report = run.report();
  recorder.Disable();

  std::ofstream trace_out(opt.out);
  trace_out << recorder.ExportChromeTrace();
  trace_out.flush();
  if (!trace_out.good()) {
    std::fprintf(stderr, "failed writing %s\n", opt.out.c_str());
    return 1;
  }

  obs::Snapshot snap;
  snap.Append("shards", static_cast<uint64_t>(opt.shards));
  snap.Append("sample", static_cast<uint64_t>(run.MergedSampleIds().size()));
  AppendFaultReport(report, "faults", &snap);
  snap.Append("trace/events", static_cast<uint64_t>(recorder.Collect().size()));
  snap.Append("trace/dropped", recorder.dropped());
  snap.Append("trace/rings", static_cast<uint64_t>(recorder.ring_count()));
  std::printf("%s\n", snap.ToJson().c_str());
  std::fprintf(stderr, "wrote %s\n", opt.out.c_str());
  return 0;
}

// Order-sensitive FNV-1a over the merged sample ids — the one number
// the recovery-soak script compares between the resumed run and the
// uninterrupted reference.
uint64_t SampleHash(const std::vector<uint64_t>& ids) {
  uint64_t h = 1469598103934665603ull;
  for (const uint64_t id : ids) {
    for (int b = 0; b < 64; b += 8) {
      h ^= (id >> b) & 0xffull;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// `recover`: durable sharded ingest with scriptable kill -9 semantics.
// --kill-at-step raises a REAL SIGKILL at shard 0's quiesce point for
// that step (exit code 137 to the caller); a later --resume invocation
// recovers every shard from --dir and finishes the same workload. The
// reference role runs the plain (non-durable) faulty harness with the
// identical zero-fault schedule, so its sample is the
// bit-identical-by-construction target.
int RunRecoverMode(const Options& opt, const Workload& w) {
  if (opt.backend != "engine" && opt.backend != "sim") {
    std::fprintf(stderr, "unknown --backend: %s (engine|sim)\n",
                 opt.backend.c_str());
    return 2;
  }
  const auto backend = opt.backend == "sim" ? faults::Backend::kSim
                                            : faults::Backend::kEngine;
  const WsworConfig config{
      .num_sites = opt.k, .sample_size = opt.s, .seed = opt.seed};
  std::vector<faults::FaultConfig> shard_faults;
  for (int j = 0; j < opt.shards; ++j) {
    faults::FaultConfig fc;
    fc.seed = opt.fault_seed + static_cast<uint64_t>(j);
    fc.process_kill_prob = opt.kill_prob;
    shard_faults.push_back(fc);
  }

  obs::Snapshot snap;
  snap.Append("shards", static_cast<uint64_t>(opt.shards));
  if (opt.reference) {
    faults::ShardedFaultyWswor ref(config, shard_faults, backend);
    ref.Run(w);
    const std::vector<uint64_t> ids = ref.MergedSampleIds();
    snap.Append("sample", static_cast<uint64_t>(ids.size()));
    snap.Append("sample_hash", SampleHash(ids));
    AppendFaultReport(ref.report(), "faults", &snap);
    std::printf("%s\n", snap.ToJson().c_str());
    return 0;
  }

  if (!durability::EnsureDir(opt.dir)) {
    std::fprintf(stderr, "cannot create --dir: %s\n", opt.dir.c_str());
    return 1;
  }
  durability::DurabilityOptions dopt;
  dopt.dir = opt.dir;
  dopt.commit_interval_steps = opt.commit_interval;
  dopt.checkpoint_interval_steps = opt.checkpoint_interval;
  durability::ShardedDurableWswor run(config, shard_faults, backend, dopt);

  // Drive the shards by hand (the sharded Run() minus the hook) so the
  // scripted kill can fire at shard 0's quiesce point. SIGKILL is not
  // catchable: the kernel tears the process down exactly as the soak
  // intends, un-committed WAL bytes and all.
  const std::vector<Workload> splits = SplitByShard(w, run.topology());
  for (int j = 0; j < run.topology().num_shards(); ++j) {
    std::function<void(uint64_t)> on_step;
    if (j == 0 && opt.kill_at_step > 0) {
      const uint64_t kill_at = opt.kill_at_step;
      on_step = [kill_at](uint64_t step) {
        if (step == kill_at) ::raise(SIGKILL);
      };
    }
    run.shard(j).Run(splits[static_cast<size_t>(j)], on_step);
  }

  const faults::RunReport report = run.report();
  if (opt.resume && report.recoveries == 0) {
    std::fprintf(stderr,
                 "note: --resume found no durable state under %s "
                 "(ran from genesis)\n",
                 opt.dir.c_str());
  }
  const std::vector<uint64_t> ids = run.MergedSampleIds();
  snap.Append("sample", static_cast<uint64_t>(ids.size()));
  snap.Append("sample_hash", SampleHash(ids));
  AppendFaultReport(report, "faults", &snap);
  std::printf("%s\n", snap.ToJson().c_str());
  return report.recovery_consistent ? 0 : 1;
}

// `wal-dump`: decode one segment with the real reader (longest valid
// prefix, stop at the first bad CRC) and print each record as a JSON
// line; the prefix/truncation summary goes to stderr.
int RunWalDumpMode(const Options& opt) {
  if (opt.file.empty()) {
    std::fprintf(stderr, "wal-dump requires --file=<wal-N.log>\n");
    return 2;
  }
  const durability::WalReadResult result = durability::ReadWalFile(opt.file);
  if (!result.ok) {
    std::fprintf(stderr, "%s: %s\n", opt.file.c_str(), result.error.c_str());
    return 1;
  }
  size_t undecodable = 0;
  for (size_t i = 0; i < result.payloads.size(); ++i) {
    const auto record = durability::DecodeWalRecord(result.payloads[i]);
    if (!record.has_value()) {
      ++undecodable;
      std::printf("{\"i\": %zu, \"type\": \"undecodable\", \"bytes\": %zu}\n",
                  i, result.payloads[i].size());
      continue;
    }
    const std::string type =
        util::JsonQuote(durability::WalRecordTypeName(record->type));
    switch (record->type) {
      case durability::WalRecordType::kMessage:
        std::printf("{\"i\": %zu, \"type\": %s, \"site\": %d, "
                    "\"msg_type\": %u, \"a\": %llu, \"x\": %.17g, "
                    "\"y\": %.17g, \"seq\": %u, \"epoch\": %u}\n",
                    i, type.c_str(), record->site, record->msg.type,
                    static_cast<unsigned long long>(record->msg.a),
                    record->msg.x, record->msg.y, record->msg.seq,
                    record->msg.epoch);
        break;
      case durability::WalRecordType::kThresholdBump:
        std::printf("{\"i\": %zu, \"type\": %s, \"threshold\": %.17g}\n", i,
                    type.c_str(), record->threshold);
        break;
      case durability::WalRecordType::kEpochChange:
        std::printf("{\"i\": %zu, \"type\": %s, \"epoch\": %lld}\n", i,
                    type.c_str(), static_cast<long long>(record->epoch));
        break;
      case durability::WalRecordType::kSampleDelta:
        if (record->evicted_valid) {
          std::printf("{\"i\": %zu, \"type\": %s, \"id\": %llu, "
                      "\"weight\": %.17g, \"key\": %.17g, "
                      "\"evicted_id\": %llu}\n",
                      i, type.c_str(),
                      static_cast<unsigned long long>(record->added.item.id),
                      record->added.item.weight, record->added.key,
                      static_cast<unsigned long long>(record->evicted_id));
        } else {
          std::printf("{\"i\": %zu, \"type\": %s, \"id\": %llu, "
                      "\"weight\": %.17g, \"key\": %.17g}\n",
                      i, type.c_str(),
                      static_cast<unsigned long long>(record->added.item.id),
                      record->added.item.weight, record->added.key);
        }
        break;
      case durability::WalRecordType::kStepMark:
        std::printf("{\"i\": %zu, \"type\": %s, \"step\": %llu}\n", i,
                    type.c_str(),
                    static_cast<unsigned long long>(record->step));
        break;
      case durability::WalRecordType::kCheckpointMark:
        std::printf("{\"i\": %zu, \"type\": %s, \"seq\": %llu}\n", i,
                    type.c_str(),
                    static_cast<unsigned long long>(record->step));
        break;
    }
  }
  std::fprintf(stderr,
               "%s: %zu records (%zu undecodable), %zu valid bytes%s\n",
               opt.file.c_str(), result.payloads.size(), undecodable,
               result.valid_bytes,
               result.truncated_tail ? ", TRUNCATED TAIL" : "");
  return 0;
}

}  // namespace
}  // namespace dwrs

int main(int argc, char** argv) {
  using namespace dwrs;
  const auto opt = Parse(argc, argv);
  if (opt.mode == "wal-dump") return RunWalDumpMode(opt);
  const Workload w = [&] {
    WorkloadBuilder builder;
    builder.num_sites(opt.k)
        .num_items(opt.n)
        .seed(opt.seed)
        .weights(MakeWeights(opt.dist))
        .partitioner(MakePartition(opt.partition));
    if (opt.algo == "wswr") builder.integer_weights(true);
    return builder.Build();
  }();
  if (opt.mode == "stats") return RunStatsMode(opt, w);
  if (opt.mode == "trace") return RunTraceMode(opt, w);
  if (opt.mode == "recover") return RunRecoverMode(opt, w);
  const auto result = Dispatch(opt, w);
  if (opt.csv) {
    std::printf("%s,%d,%d,%llu,%.6g,%llu,%llu,%llu,%.1f\n", opt.algo.c_str(),
                opt.k, opt.s, static_cast<unsigned long long>(opt.n),
                w.TotalWeight(),
                static_cast<unsigned long long>(result.messages),
                static_cast<unsigned long long>(result.words),
                static_cast<unsigned long long>(result.broadcasts),
                result.theory);
  } else {
    std::printf("algo=%s k=%d s=%d n=%llu W=%.6g\n", opt.algo.c_str(), opt.k,
                opt.s, static_cast<unsigned long long>(opt.n),
                w.TotalWeight());
    std::printf("messages=%llu words=%llu broadcasts=%llu theory~%.0f %s\n",
                static_cast<unsigned long long>(result.messages),
                static_cast<unsigned long long>(result.words),
                static_cast<unsigned long long>(result.broadcasts),
                result.theory, result.extra.c_str());
  }
  return 0;
}
