#!/usr/bin/env python3
"""Bench regression gate.

Compares the BENCH_*.json rows emitted by a --quick bench run against the
committed bench/baseline.json and fails (exit 1) when any gated
throughput metric drops by more than the allowed fraction. Run from CI
after the bench-quick jobs, or locally:

    python3 tools/check_bench.py --build-dir build
    python3 tools/check_bench.py --build-dir build --update   # re-baseline

Baseline schema (bench/baseline.json):

    {
      "max_drop": 0.25,
      "benches": {
        "<bench name>": {
          "key_fields":  ["endpoint", "path"],      # row identity
          "gate_fields": ["items_per_sec"],         # higher is better
          "gate_fields_lower": ["query_us_mean"],   # lower is better
          "max_drop": 0.6,                          # optional override
          "max_rise": 3.0,                          # optional, lower fields
          "reference": {<key fields of one row>},   # optional, see below
          "references": {"<field>": {<key fields>}},  # per-field override
          "reference_max_drop": 0.75,               # optional
          "rows": [ {<key fields + gate fields>}, ... ]
        }
      }
    }

A bench-level "max_drop" overrides the global one: single-threaded
micro-benches are stable and keep the tight default, while wall-clock
throughput of a 17-thread engine on a shared CI runner needs a wider
band — wide tolerances still catch the real cliffs (an accidental -O0
bench build is a 5-10x drop).

Normalization ("reference"): when a bench names a reference row — a
stable single-thread measurement such as the k=2 simulator run — every
OTHER gated row is additionally compared as a RATIO to the in-run
reference: current_row/current_ref versus baseline_row/baseline_ref. A
uniformly slow or fast CI runner cancels out of the ratio, so the
normalized tolerance measures relative regressions (a lock added to a
hot path) instead of machine speed. A normalized row fails the gate
only when it is beyond tolerance BOTH normalized and absolutely: a
slower runner passes via the ratio, a runner whose core count reshapes
the multithreaded/single-thread ratio passes via the absolute number,
and a real regression fails both. The reference row itself is gated
absolutely with the wider "reference_max_drop" band (default 0.75) —
its job is only to catch whole-build cliffs like an accidental -O0
bench, which is a 5-10x drop.

Lower-is-better fields ("gate_fields_lower", e.g. a query latency mean)
are gated absolutely and in the opposite direction: the row fails when
the current value exceeds baseline * (1 + max_rise). Latency on a shared
runner is noisier than throughput, so max_rise defaults to a wide 3.0 —
the gate exists to catch order-of-magnitude cliffs (a lock added to the
query path), not jitter. Normalization does not apply to lower fields.

Per-field references ("references"): a bench can name a different
normalization row per gated field — queries_per_sec rows divide by the
in-run single-reader uncached query row while items_per_sec rows keep
dividing by the single-thread simulator run. Fields not in the map fall
back to the bench-level "reference"; a field its reference row does not
carry is gated absolutely.

Rows are matched on the exact values of key_fields; a baseline row with
no matching current row is a HARD error (a silently vanished
measurement is itself a regression), as are a missing BENCH_*.json file
and a gated field absent from a current row. --allow-missing downgrades
all three to informational notes — the escape hatch for intentionally
restricted local runs (e.g. a bench filtered by --shards); CI runs
without it. Current rows absent from the baseline are reported but do
not fail the gate — run --update after intentionally adding rows
(--update stores RAW values; normalization is applied at check time).
--update --merge=min keeps the smaller of the stored and measured value
per gated field, so repeated update runs converge on a conservative
floor (the "min over repeated local runs" baselining convention).
"""

import argparse
import json
import os
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def row_key(row, key_fields):
    return tuple((k, row.get(k)) for k in key_fields)


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def index_rows(rows, key_fields):
    out = {}
    for row in rows:
        key = row_key(row, key_fields)
        if key in out:
            raise SystemExit(f"duplicate row key {fmt_key(key)}; "
                             "key_fields do not uniquely identify rows")
        out[key] = row
    return out


def reference_values(name, spec, base, current, failures):
    """Returns {field: (ref_key, base_ref_value, cur_ref_value)}.

    A bench names its normalization rows via the bench-level "reference"
    (one row for every gated field) and/or the per-field "references"
    map, which overrides the bench-level row for the fields it names —
    e.g. queries_per_sec normalizes against the in-run single-reader
    uncached row while items_per_sec keeps the single-thread simulator
    reference. A field whose reference row does not carry the field is
    simply not normalized (absolute gate only).
    """
    per_field = spec.get("references", {})
    refs = {}
    reported = set()
    for field in spec["gate_fields"]:
        ref_spec = per_field.get(field, spec.get("reference"))
        if ref_spec is None:
            continue
        ref_key = row_key(ref_spec, spec["key_fields"])
        base_ref = base.get(ref_key)
        cur_ref = current.get(ref_key)
        if base_ref is None or cur_ref is None:
            if ref_key not in reported:
                reported.add(ref_key)
                failures.append(
                    f"{name}: reference row [{fmt_key(ref_key)}] missing "
                    f"from {'baseline' if base_ref is None else 'run'} — "
                    "cannot normalize")
            continue
        bv, cv = base_ref.get(field), cur_ref.get(field)
        if bv and cv:
            refs[field] = (ref_key, bv, cv)
    return refs


def check(baseline, build_dir, allow_missing=False):
    failures = []
    notes = []

    def missing(msg):
        # --allow-missing: a vanished bench file / row / field is reported
        # but does not fail the gate (escape hatch for intentionally
        # restricted runs, e.g. a bench binary filtered by --shards).
        if allow_missing:
            notes.append("skip  " + msg)
        else:
            failures.append(msg)

    for name, spec in baseline["benches"].items():
        max_drop = float(spec.get("max_drop", baseline.get("max_drop", 0.25)))
        ref_max_drop = float(spec.get("reference_max_drop", 0.75))
        max_rise = float(spec.get("max_rise", baseline.get("max_rise", 3.0)))
        path = os.path.join(build_dir, f"BENCH_{name}.json")
        if not os.path.exists(path):
            missing(f"{name}: {path} not found — bench did not run")
            continue
        current = index_rows(load_json(path)["rows"], spec["key_fields"])
        base = index_rows(spec["rows"], spec["key_fields"])
        ref_failures = []
        refs = reference_values(name, spec, base, current, ref_failures)
        for msg in ref_failures:
            missing(msg)
        for key, base_row in base.items():
            cur_row = current.get(key)
            if cur_row is None:
                missing(f"{name}: row [{fmt_key(key)}] missing "
                        "from current run")
                continue
            for field in spec["gate_fields"]:
                base_value = base_row.get(field)
                cur_value = cur_row.get(field)
                if base_value is None:
                    continue
                if cur_value is None:
                    missing(f"{name}: [{fmt_key(key)}] {field} "
                            "missing from current run")
                    continue
                abs_ok = cur_value >= base_value * (1.0 - max_drop)
                abs_ratio = (cur_value / base_value if base_value
                             else float("inf"))
                if field in refs and key == refs[field][0]:
                    # The reference itself: absolute gate, wide band —
                    # catches whole-build cliffs only.
                    ok = cur_value >= base_value * (1.0 - ref_max_drop)
                    line = (f"{name}: [{fmt_key(key)}] {field} "
                            f"{cur_value:.3g} vs baseline {base_value:.3g} "
                            f"({abs_ratio:.2f}x) (reference, absolute)")
                elif field in refs:
                    # Normalize both sides by the in-run single-thread
                    # reference: machine speed cancels out of the ratio.
                    # A row fails only when it is beyond tolerance BOTH
                    # normalized and absolutely — a slower runner passes
                    # via the ratio, a runner whose core count reshapes
                    # the engine/sim ratio passes via the absolute
                    # number, and a real regression fails both.
                    _, base_ref, cur_ref = refs[field]
                    norm_base = base_value / base_ref
                    norm_cur = cur_value / cur_ref
                    norm_ok = norm_cur >= norm_base * (1.0 - max_drop)
                    ok = norm_ok or abs_ok
                    line = (f"{name}: [{fmt_key(key)}] {field} "
                            f"{norm_cur:.3g} vs baseline {norm_base:.3g} "
                            f"normalized ({norm_cur / norm_base:.2f}x, "
                            f"absolute {abs_ratio:.2f}x)")
                else:
                    ok = abs_ok
                    line = (f"{name}: [{fmt_key(key)}] {field} "
                            f"{cur_value:.3g} vs baseline {base_value:.3g} "
                            f"({abs_ratio:.2f}x)")
                if ok:
                    notes.append("ok    " + line)
                else:
                    failures.append("DROP  " + line)
            for field in spec.get("gate_fields_lower", []):
                base_value = base_row.get(field)
                cur_value = cur_row.get(field)
                if base_value is None:
                    continue
                if cur_value is None:
                    missing(f"{name}: [{fmt_key(key)}] {field} "
                            "missing from current run")
                    continue
                # Lower is better: absolute ceiling only (latency is too
                # noisy for ratio normalization to help).
                ratio = (cur_value / base_value if base_value
                         else float("inf"))
                line = (f"{name}: [{fmt_key(key)}] {field} "
                        f"{cur_value:.3g} vs baseline {base_value:.3g} "
                        f"({ratio:.2f}x, lower is better)")
                if cur_value <= base_value * (1.0 + max_rise):
                    notes.append("ok    " + line)
                else:
                    failures.append("RISE  " + line)
        for key in current:
            if key not in base:
                notes.append(f"new   {name}: [{fmt_key(key)}] not in "
                             "baseline (run --update to gate it)")
    return failures, notes


def update(baseline, build_dir, baseline_path, merge="replace"):
    for name, spec in baseline["benches"].items():
        path = os.path.join(build_dir, f"BENCH_{name}.json")
        if not os.path.exists(path):
            print(f"warning: {path} not found — keeping {name}'s "
                  "baseline rows unchanged")
            continue
        lower_fields = spec.get("gate_fields_lower", [])
        kept_fields = spec["key_fields"] + spec["gate_fields"] + lower_fields
        # Merge by key rather than replace: a restricted run (e.g.
        # bench_engine_throughput --shards=2) must not silently un-gate
        # the rows it didn't produce.
        merged = index_rows(spec["rows"], spec["key_fields"])
        for row in load_json(path)["rows"]:
            key = row_key(row, spec["key_fields"])
            new_row = {k: row[k] for k in kept_fields if k in row}
            if merge == "min" and key in merged:
                # Conservative merge across repeated runs: keep the
                # smaller throughput but the LARGER latency, so both
                # gates converge on their loosest observed bound.
                for field in spec["gate_fields"]:
                    old = merged[key].get(field)
                    if old is not None and field in new_row:
                        new_row[field] = min(old, new_row[field])
                for field in lower_fields:
                    old = merged[key].get(field)
                    if old is not None and field in new_row:
                        new_row[field] = max(old, new_row[field])
            merged[key] = new_row
        spec["rows"] = list(merged.values())
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=1)
        f.write("\n")
    print(f"baseline updated: {baseline_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="directory holding the BENCH_*.json outputs")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: bench/baseline.json "
                             "next to this script's repo root)")
    parser.add_argument("--max-drop", type=float, default=None,
                        help="override the allowed fractional throughput "
                             "drop everywhere, including benches with "
                             "their own max_drop")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run")
    parser.add_argument("--merge", choices=["replace", "min"],
                        default="replace",
                        help="with --update: 'min' keeps the smaller of "
                             "stored and measured per gated field "
                             "(conservative floor over repeated runs)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="report missing bench files / rows / gated "
                             "fields instead of failing on them (for "
                             "intentionally restricted local runs; CI "
                             "must not pass this)")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = args.baseline or os.path.join(repo_root, "bench",
                                                  "baseline.json")
    baseline = load_json(baseline_path)
    if args.max_drop is not None:
        baseline["max_drop"] = args.max_drop
        for spec in baseline["benches"].values():
            spec.pop("max_drop", None)  # the flag overrides every tier
            spec.pop("reference_max_drop", None)

    if args.update:
        update(baseline, args.build_dir, baseline_path, args.merge)
        return 0

    failures, notes = check(baseline, args.build_dir,
                            allow_missing=args.allow_missing)
    for line in notes:
        print(line)
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        print(f"\nbench gate FAILED: {len(failures)} regression(s) beyond "
              "tolerance", file=sys.stderr)
        return 1
    print(f"\nbench gate passed ({len(notes)} measurements within "
          "tolerance of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
